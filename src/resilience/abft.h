#pragma once

// Algorithm-based fault tolerance for setup artifacts: sidecar checksums
// over data that is computed once and then read for thousands of operator
// applications — compressed geometry batches, kernel dispatch tables, the
// partitioner's exchange lists, AMG level matrices. A bit flipped in any of
// these silently poisons every subsequent vmult; unlike a flipped Krylov
// vector it is never washed out by the iteration. ArtifactGuard therefore
// keeps an FNV-1a checksum of each registered artifact and, on scrub(),
// re-verifies them all and rebuilds the corrupt ones from primary data (the
// mesh, the operator, the instantiation tables).
//
// scrub() implements the AbftScrubber hook, so a SolverControl can point
// abft_scrub at an ArtifactGuard and have the CG residual-replay boundary
// double as the scrubbing cadence: a corrupted geometry batch is then
// rebuilt mid-solve and the iteration rolls back to its last validated
// snapshot — a local repair costing at most one replay interval, not a
// restart (see solvers/cg.h and docs/DEVELOPING.md, "Silent data corruption
// & ABFT").
//
// Region lists are enumerated lazily (a callback, not stored pointers) so a
// rebuild that reallocates its arrays never leaves the guard holding stale
// addresses.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/abft_hooks.h"
#include "matrixfree/matrix_free.h"
#include "vmpi/partitioner.h"

namespace dgflow::resilience
{
class ArtifactGuard : public AbftScrubber
{
public:
  /// One contiguous span of an artifact's memory.
  struct Region
  {
    const void *data = nullptr;
    std::size_t bytes = 0;
  };

  /// Enumerates the artifact's regions *right now* — called afresh on every
  /// verification, so rebuilds that reallocate stay valid.
  using Regions = std::function<std::vector<Region>()>;

  /// Reconstructs the artifact from primary data. Must leave it in a valid
  /// state; it need not be bit-identical (a repair may route around the
  /// corrupt representation, e.g. by disabling the kernel fast path), in
  /// which case scrub() adopts the post-rebuild state as the new baseline.
  using Rebuild = std::function<void()>;

  /// Registers an artifact and records its baseline checksum. Re-using a
  /// name replaces the earlier registration.
  void protect(std::string name, Regions regions, Rebuild rebuild);

  /// Re-checksums one artifact; true when it matches its baseline.
  bool verify(const std::string &name) const;

  /// Recomputes the baseline of one artifact after a legitimate mutation
  /// (e.g. the operator was reinitialized for a new mesh).
  void rebaseline(const std::string &name);

  /// Verifies every artifact and rebuilds the corrupt ones; returns the
  /// number rebuilt (0 = all checksums matched). A rebuild that reproduces
  /// the baseline bit-for-bit is a full repair; one that legitimately
  /// changes the representation rebaselines to the repaired state.
  unsigned int scrub() override;

  unsigned int n_artifacts() const { return entries_.size(); }
  unsigned long long verifications() const { return verifications_; }
  unsigned long long rebuilds() const { return rebuilds_; }

private:
  struct Entry
  {
    std::string name;
    Regions regions;
    Rebuild rebuild;
    std::uint64_t baseline = 0;
  };

  std::uint64_t checksum(const Entry &e) const;
  const Entry &find(const std::string &name) const;
  Entry &find(const std::string &name)
  {
    return const_cast<Entry &>(
      static_cast<const ArtifactGuard *>(this)->find(name));
  }

  std::vector<Entry> entries_;
  mutable unsigned long long verifications_ = 0;
  unsigned long long rebuilds_ = 0;
};

/// Protects the specialized kernel dispatch tables (float and double, every
/// size in DGFLOW_KERNEL_DISPATCH_SIZES). The entries are code pointers, so
/// a flipped one cannot be recomputed — the repair disables the specialized
/// fast path instead, routing every evaluator constructed afterwards through
/// the verified runtime-extent kernels (scrub() then adopts the disabled
/// state as the new baseline).
void protect_kernel_tables(ArtifactGuard &guard);

/// Protects every cell/face metric array of a MatrixFree object — the
/// compressed geometry batches of the paper's Section 3.2 storage scheme.
/// Repair: MatrixFree::recompute_metrics(), a deterministic rebuild from the
/// stored geometry lattice that restores the arrays bit-for-bit.
template <typename Number>
void protect_matrix_free(ArtifactGuard &guard, MatrixFree<Number> &mf,
                         std::string name = "matrix_free")
{
  auto regions = [&mf]() {
    std::vector<ArtifactGuard::Region> r;
    const auto add = [&r](const auto &v) {
      if (v.size() > 0)
        r.push_back({v.data(), v.size() * sizeof(v[0])});
    };
    for (unsigned int q = 0; q < mf.n_quads(); ++q)
    {
      const auto &cm = mf.cell_metric(q);
      add(cm.type);
      add(cm.data_index);
      add(cm.inv_jac_t);
      add(cm.JxW);
      add(cm.batch_inv_jac_t);
      add(cm.batch_det);
      add(cm.q_weight);
      add(cm.q_points);
      const auto &fm = mf.face_metric(q);
      add(fm.type);
      add(fm.data_index);
      add(fm.normal);
      add(fm.JxW);
      add(fm.inv_jac_t_m);
      add(fm.inv_jac_t_p);
      add(fm.batch_normal);
      add(fm.batch_jxw_scale);
      add(fm.batch_inv_jac_t_m);
      add(fm.batch_inv_jac_t_p);
      add(fm.q_weight);
      add(fm.q_points);
      add(fm.penalty_factor);
    }
    return r;
  };
  guard.protect(std::move(name), std::move(regions),
                [&mf]() { mf.recompute_metrics(); });
}

/// Protects a partitioner's exchange lists (send/recv lists and ghost
/// indices — the data every halo exchange trusts). Repair: rebuild from the
/// mesh and ownership map via Partitioner::cell_partitioner(), which needs
/// no communication. @p mesh is captured by reference and must outlive the
/// guard; @p rank_of_cell is copied.
inline void protect_partitioner(ArtifactGuard &guard, vmpi::Partitioner &part,
                                const Mesh &mesh,
                                std::vector<int> rank_of_cell,
                                std::string name = "partitioner")
{
  auto regions = [&part]() {
    std::vector<ArtifactGuard::Region> r;
    const auto add_lists = [&r](const auto &lists) {
      for (const auto &[neighbor, list] : lists)
      {
        r.push_back({&neighbor, sizeof(neighbor)});
        if (!list.empty())
          r.push_back({list.data(), list.size() * sizeof(list[0])});
      }
    };
    add_lists(part.send_lists());
    add_lists(part.recv_lists());
    const auto &ghosts = part.ghost_indices();
    if (!ghosts.empty())
      r.push_back({ghosts.data(), ghosts.size() * sizeof(ghosts[0])});
    return r;
  };
  auto rebuild = [&part, &mesh, rank_of_cell = std::move(rank_of_cell)]() {
    part = vmpi::Partitioner::cell_partitioner(mesh, rank_of_cell,
                                               part.rank(), part.n_ranks());
  };
  guard.protect(std::move(name), std::move(regions), std::move(rebuild));
}

/// Protects the AMG hierarchy owned by a multigrid preconditioner (any type
/// exposing amg() and rebuild_amg(), i.e. HybridMultigrid). The checksummed
/// regions are every level's A/P/R values plus the coarse LU factors;
/// repair re-runs the AMG setup from the assembled coarse matrix — a
/// deterministic rebuild, so the baseline is reproduced bit-for-bit.
template <typename Multigrid>
void protect_amg(ArtifactGuard &guard, Multigrid &mg,
                 std::string name = "amg_levels")
{
  guard.protect(
    std::move(name),
    [&mg]() {
      std::vector<std::pair<const void *, std::size_t>> raw;
      mg.amg().collect_value_regions(raw);
      std::vector<ArtifactGuard::Region> r;
      for (const auto &[data, bytes] : raw)
        if (bytes > 0)
          r.push_back({data, bytes});
      return r;
    },
    [&mg]() { mg.rebuild_amg(); });
}

} // namespace dgflow::resilience
