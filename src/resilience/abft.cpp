#include "resilience/abft.h"

#include <cstring>

#include "fem/kernel_backend.h"
#include "fem/kernel_dispatch.h"
#include "fem/kernel_dispatch_sizes.h"
#include "instrumentation/profiler.h"

namespace dgflow::resilience
{
void ArtifactGuard::protect(std::string name, Regions regions, Rebuild rebuild)
{
  Entry e;
  e.name = std::move(name);
  e.regions = std::move(regions);
  e.rebuild = std::move(rebuild);
  e.baseline = checksum(e);
  for (Entry &existing : entries_)
    if (existing.name == e.name)
    {
      existing = std::move(e);
      return;
    }
  entries_.push_back(std::move(e));
}

std::uint64_t ArtifactGuard::checksum(const Entry &e) const
{
  // FNV-1a over the concatenation of all regions, with each region's length
  // folded in so data sliding between regions cannot cancel out. The hash
  // consumes 8-byte words (plus a byte-wise tail): geometry batches run to
  // hundreds of MB on production meshes, and the scrub sits inside the
  // solver's replay boundary, so checksum throughput bounds the guard's
  // steady-state overhead.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&h](const void *data, const std::size_t n) {
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    const std::size_t n_words = n / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < n_words; ++i)
    {
      std::uint64_t w;
      std::memcpy(&w, bytes + i * sizeof(w), sizeof(w));
      h ^= w;
      h *= 0x100000001b3ull;
    }
    for (std::size_t i = n_words * sizeof(std::uint64_t); i < n; ++i)
    {
      h ^= bytes[i];
      h *= 0x100000001b3ull;
    }
  };
  for (const Region &r : e.regions())
  {
    const std::uint64_t n = r.bytes;
    fold(&n, sizeof(n));
    fold(r.data, r.bytes);
  }
  return h;
}

const ArtifactGuard::Entry &ArtifactGuard::find(const std::string &name) const
{
  for (const Entry &e : entries_)
    if (e.name == name)
      return e;
  throw std::runtime_error("ArtifactGuard: unknown artifact '" + name + "'");
}

bool ArtifactGuard::verify(const std::string &name) const
{
  const Entry &e = find(name);
  ++verifications_;
  return checksum(e) == e.baseline;
}

void ArtifactGuard::rebaseline(const std::string &name)
{
  Entry &e = find(name);
  e.baseline = checksum(e);
}

unsigned int ArtifactGuard::scrub()
{
  DGFLOW_PROF_SCOPE("abft_scrub");
  unsigned int rebuilt = 0;
  for (Entry &e : entries_)
  {
    ++verifications_;
    if (checksum(e) == e.baseline)
      continue;
    e.rebuild();
    ++rebuilds_;
    ++rebuilt;
    DGFLOW_PROF_COUNT("abft_scrub_rebuilds", 1);
    const std::uint64_t after = checksum(e);
    // a bit-identical rebuild is a full repair; a representation-changing
    // one (kernel fast path disabled) is adopted as the new baseline
    if (after != e.baseline)
      e.baseline = after;
  }
  return rebuilt;
}

void protect_kernel_tables(ArtifactGuard &guard)
{
  guard.protect(
    "kernel_dispatch_tables",
    []() {
      std::vector<ArtifactGuard::Region> r;
      const auto add = [&r](const auto *table) {
        if (table != nullptr)
          r.push_back({table, sizeof(*table)});
      };
#define DGFLOW_ABFT_ADD_TABLES(deg, nq)                                       \
  add(lookup_cell_kernels<double>(deg, nq));                                  \
  add(lookup_face_kernels<double>(deg, nq));                                  \
  add(lookup_cell_kernels<float>(deg, nq));                                   \
  add(lookup_face_kernels<float>(deg, nq));                                   \
  add(lookup_soa_cell_kernels<double>(deg, nq));                              \
  add(lookup_soa_face_kernels<double>(deg, nq));                              \
  add(lookup_soa_cell_kernels<float>(deg, nq));                               \
  add(lookup_soa_face_kernels<float>(deg, nq));
      DGFLOW_KERNEL_DISPATCH_SIZES(DGFLOW_ABFT_ADD_TABLES)
#undef DGFLOW_ABFT_ADD_TABLES
      return r;
    },
    // routing to the generic backend default disables fixed-size dispatch in
    // every backend: lookup_* and lookup_soa_* return nullptr afterwards, so
    // batch/soa evaluators degrade to the verified runtime-extent sweeps
    []() { set_default_kernel_backend(KernelBackendType::generic); });
}

} // namespace dgflow::resilience
