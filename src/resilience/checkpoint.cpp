#include "resilience/checkpoint.h"

#include "resilience/ckpt_io.h"

namespace dgflow::resilience
{
std::vector<char> CheckpointWriter::encode() const
{
  const std::uint64_t payload_size = payload_.size();
  const std::uint64_t checksum =
    internal::fnv1a64(payload_.data(), payload_.size());
  const std::uint32_t reserved = 0;

  std::vector<char> image;
  image.reserve(sizeof(internal::magic) + 2 * sizeof(std::uint32_t) +
                2 * sizeof(std::uint64_t) + payload_.size());
  const auto append = [&image](const void *data, const std::size_t bytes) {
    const char *c = static_cast<const char *>(data);
    image.insert(image.end(), c, c + bytes);
  };
  append(internal::magic, sizeof(internal::magic));
  append(&internal::format_version, sizeof(internal::format_version));
  append(&reserved, sizeof(reserved));
  append(&payload_size, sizeof(payload_size));
  append(&checksum, sizeof(checksum));
  append(payload_.data(), payload_.size());
  return image;
}

std::uint64_t CheckpointWriter::close()
{
  DGFLOW_ASSERT(!closed_, "CheckpointWriter::close() called twice");
  closed_ = true;

  const std::uint64_t checksum =
    internal::fnv1a64(payload_.data(), payload_.size());
  const std::vector<char> image = encode();

  // the CkptIo shim does the durable atomic publish (tmp + fsync + rename +
  // parent-dir fsync) and is where deterministic I/O faults are injected
  CkptIo::instance().write_file_atomic(path_, image.data(), image.size(),
                                       durable_);
  return checksum;
}

CheckpointReader::CheckpointReader(const std::string &path)
{
  const std::vector<char> image = CkptIo::instance().read_file(path);
  parse(image.data(), image.size(), "'" + path + "'");
}

CheckpointReader::CheckpointReader(const std::vector<char> &image,
                                   const std::string &label)
{
  parse(image.data(), image.size(), label);
}

void CheckpointReader::parse(const char *image, const std::size_t bytes,
                             const std::string &label)
{
  const std::size_t header_bytes = sizeof(internal::magic) +
                                   2 * sizeof(std::uint32_t) +
                                   2 * sizeof(std::uint64_t);
  if (bytes < header_bytes)
    throw CheckpointError(label + " is too short for a header");

  std::size_t pos = 0;
  const auto extract = [&](void *data, const std::size_t n) {
    std::memcpy(data, image + pos, n);
    pos += n;
  };
  char magic[sizeof(internal::magic)];
  std::uint32_t version = 0, reserved = 0;
  std::uint64_t payload_size = 0, checksum = 0;
  extract(magic, sizeof(magic));
  extract(&version, sizeof(version));
  extract(&reserved, sizeof(reserved));
  extract(&payload_size, sizeof(payload_size));
  extract(&checksum, sizeof(checksum));
  if (std::memcmp(magic, internal::magic, sizeof(magic)) != 0)
    throw CheckpointError(label + " has no DGFLOWCK magic");
  if (version != internal::format_version)
    throw CheckpointError(label + " has format version " +
                          std::to_string(version) + ", reader supports " +
                          std::to_string(internal::format_version));
  if (bytes - pos < payload_size)
    throw CheckpointError(label + " payload truncated: header claims " +
                          std::to_string(payload_size) + " bytes, " +
                          std::to_string(bytes - pos) + " present");

  payload_.assign(image + pos, image + pos + payload_size);
  const std::uint64_t actual =
    internal::fnv1a64(payload_.data(), payload_.size());
  if (actual != checksum)
    throw CheckpointError(label + " checksum mismatch (stored " +
                          std::to_string(checksum) + ", computed " +
                          std::to_string(actual) +
                          "): the data is corrupted; refusing to restart "
                          "from it");
  checksum_ = checksum;
}

} // namespace dgflow::resilience
