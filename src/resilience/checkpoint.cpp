#include "resilience/checkpoint.h"

#include <cstdio>
#include <fstream>

namespace dgflow::resilience
{
void CheckpointWriter::close()
{
  DGFLOW_ASSERT(!closed_, "CheckpointWriter::close() called twice");
  closed_ = true;

  const std::uint64_t payload_size = payload_.size();
  const std::uint64_t checksum =
    internal::fnv1a64(payload_.data(), payload_.size());
  const std::uint32_t reserved = 0;

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw CheckpointError("cannot open '" + tmp + "' for writing");
    out.write(internal::magic, sizeof(internal::magic));
    out.write(reinterpret_cast<const char *>(&internal::format_version),
              sizeof(internal::format_version));
    out.write(reinterpret_cast<const char *>(&reserved), sizeof(reserved));
    out.write(reinterpret_cast<const char *>(&payload_size),
              sizeof(payload_size));
    out.write(reinterpret_cast<const char *>(&checksum), sizeof(checksum));
    out.write(payload_.data(), payload_.size());
    out.flush();
    if (!out)
      throw CheckpointError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw CheckpointError("cannot publish '" + tmp + "' as '" + path_ + "'");
}

CheckpointReader::CheckpointReader(const std::string &path)
{
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw CheckpointError("cannot open '" + path + "'");

  char magic[sizeof(internal::magic)];
  std::uint32_t version = 0, reserved = 0;
  std::uint64_t payload_size = 0, checksum = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char *>(&version), sizeof(version));
  in.read(reinterpret_cast<char *>(&reserved), sizeof(reserved));
  in.read(reinterpret_cast<char *>(&payload_size), sizeof(payload_size));
  in.read(reinterpret_cast<char *>(&checksum), sizeof(checksum));
  if (!in)
    throw CheckpointError("'" + path + "' is too short for a header");
  if (std::memcmp(magic, internal::magic, sizeof(magic)) != 0)
    throw CheckpointError("'" + path + "' has no DGFLOWCK magic");
  if (version != internal::format_version)
    throw CheckpointError("'" + path + "' has format version " +
                          std::to_string(version) + ", reader supports " +
                          std::to_string(internal::format_version));

  payload_.resize(payload_size);
  in.read(payload_.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::uint64_t>(in.gcount()) != payload_size)
    throw CheckpointError("'" + path + "' payload truncated: header claims " +
                          std::to_string(payload_size) + " bytes, file has " +
                          std::to_string(in.gcount()));

  const std::uint64_t actual =
    internal::fnv1a64(payload_.data(), payload_.size());
  if (actual != checksum)
    throw CheckpointError("'" + path + "' checksum mismatch (stored " +
                          std::to_string(checksum) + ", computed " +
                          std::to_string(actual) +
                          "): the file is corrupted; refusing to restart "
                          "from it");
}

} // namespace dgflow::resilience
