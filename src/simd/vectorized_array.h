#pragma once

// Cross-platform SIMD abstraction (paper Section 3.2).
//
// A VectorizedArray<Number, W> packs W lanes of type Number and provides
// overloads of the basic arithmetic operations +, -, *, / as well as
// broadcast, load/store, gather/scatter and array-of-struct <->
// struct-of-array conversions. The data member uses the GCC/Clang vector
// extension, so all machine-code generation beyond the arithmetic mapping is
// left to the optimizing compiler; on AVX-512 a VectorizedArray<double>
// occupies one 512-bit register (8 lanes), matching the SIMD-cell notion of
// the paper. The same source compiles to scalar code when no vector ISA is
// available (W = 1 specialization).
//
// The matrix-free cell and face loops vectorize *across elements* by using
// VectorizedArray as the scalar type of all local arithmetic, so >97% of the
// arithmetic work runs in vector registers without cross-lane traffic.

#include <cmath>
#include <cstring>
#include <type_traits>

#include "common/types.h"

namespace dgflow
{
/// Largest natural SIMD width for @p Number on the build target.
template <typename Number>
constexpr unsigned int preferred_simd_width()
{
#if defined(__AVX512F__)
  return 64 / sizeof(Number);
#elif defined(__AVX__)
  return 32 / sizeof(Number);
#elif defined(__SSE2__)
  return 16 / sizeof(Number);
#else
  return 1;
#endif
}

template <typename Number, unsigned int W = preferred_simd_width<Number>()>
class VectorizedArray
{
  static_assert(std::is_floating_point_v<Number>);
  static_assert(W >= 2 && (W & (W - 1)) == 0, "width must be a power of two");

public:
  using value_type = Number;
  static constexpr unsigned int width = W;

  using vector_type
    [[gnu::vector_size(W * sizeof(Number))]] = Number;

  VectorizedArray() = default;

  /// Broadcast constructor.
  VectorizedArray(const Number x) { data = x - vector_type{}; }

  VectorizedArray &operator=(const Number x)
  {
    data = x - vector_type{};
    return *this;
  }

  Number &operator[](const unsigned int lane)
  {
    return reinterpret_cast<Number *>(&data)[lane];
  }
  Number operator[](const unsigned int lane) const
  {
    return reinterpret_cast<const Number *>(&data)[lane];
  }

  VectorizedArray &operator+=(const VectorizedArray &o)
  {
    data += o.data;
    return *this;
  }
  VectorizedArray &operator-=(const VectorizedArray &o)
  {
    data -= o.data;
    return *this;
  }
  VectorizedArray &operator*=(const VectorizedArray &o)
  {
    data *= o.data;
    return *this;
  }
  VectorizedArray &operator/=(const VectorizedArray &o)
  {
    data /= o.data;
    return *this;
  }

  /// Unaligned load of W contiguous values.
  void load(const Number *ptr) { std::memcpy(&data, ptr, sizeof(data)); }

  /// Unaligned store of W contiguous values.
  void store(Number *ptr) const { std::memcpy(ptr, &data, sizeof(data)); }

  /// Gathers data[l] = base[offsets[l]].
  template <typename Index>
  void gather(const Number *base, const Index *offsets)
  {
    for (unsigned int l = 0; l < W; ++l)
      (*this)[l] = base[offsets[l]];
  }

  /// Scatters base[offsets[l]] = data[l]. Offsets must be distinct.
  template <typename Index>
  void scatter(Number *base, const Index *offsets) const
  {
    for (unsigned int l = 0; l < W; ++l)
      base[offsets[l]] = (*this)[l];
  }

  /// Horizontal sum over lanes.
  Number sum() const
  {
    Number s = 0;
    for (unsigned int l = 0; l < W; ++l)
      s += (*this)[l];
    return s;
  }

  vector_type data;
};

/// Scalar fallback keeping the same interface with a single lane.
template <typename Number>
class VectorizedArray<Number, 1>
{
public:
  using value_type = Number;
  static constexpr unsigned int width = 1;

  VectorizedArray() = default;
  VectorizedArray(const Number x) : data(x) {}
  VectorizedArray &operator=(const Number x)
  {
    data = x;
    return *this;
  }

  Number &operator[](const unsigned int) { return data; }
  Number operator[](const unsigned int) const { return data; }

  VectorizedArray &operator+=(const VectorizedArray &o)
  {
    data += o.data;
    return *this;
  }
  VectorizedArray &operator-=(const VectorizedArray &o)
  {
    data -= o.data;
    return *this;
  }
  VectorizedArray &operator*=(const VectorizedArray &o)
  {
    data *= o.data;
    return *this;
  }
  VectorizedArray &operator/=(const VectorizedArray &o)
  {
    data /= o.data;
    return *this;
  }

  void load(const Number *ptr) { data = *ptr; }
  void store(Number *ptr) const { *ptr = data; }

  template <typename Index>
  void gather(const Number *base, const Index *offsets)
  {
    data = base[offsets[0]];
  }
  template <typename Index>
  void scatter(Number *base, const Index *offsets) const
  {
    base[offsets[0]] = data;
  }

  Number sum() const { return data; }

  Number data;
};

// ---- arithmetic operators ----

template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator+(VectorizedArray<N, W> a,
                                       const VectorizedArray<N, W> &b)
{
  return a += b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator-(VectorizedArray<N, W> a,
                                       const VectorizedArray<N, W> &b)
{
  return a -= b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator*(VectorizedArray<N, W> a,
                                       const VectorizedArray<N, W> &b)
{
  return a *= b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator/(VectorizedArray<N, W> a,
                                       const VectorizedArray<N, W> &b)
{
  return a /= b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator-(const VectorizedArray<N, W> &a)
{
  return VectorizedArray<N, W>(N(0)) - a;
}

// scalar (broadcast) mixed operators
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator+(const N a, VectorizedArray<N, W> b)
{
  return VectorizedArray<N, W>(a) + b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator+(VectorizedArray<N, W> a, const N b)
{
  return a + VectorizedArray<N, W>(b);
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator-(const N a,
                                       const VectorizedArray<N, W> &b)
{
  return VectorizedArray<N, W>(a) - b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator-(VectorizedArray<N, W> a, const N b)
{
  return a - VectorizedArray<N, W>(b);
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator*(const N a, VectorizedArray<N, W> b)
{
  return VectorizedArray<N, W>(a) * b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator*(VectorizedArray<N, W> a, const N b)
{
  return a * VectorizedArray<N, W>(b);
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator/(const N a,
                                       const VectorizedArray<N, W> &b)
{
  return VectorizedArray<N, W>(a) / b;
}
template <typename N, unsigned int W>
inline VectorizedArray<N, W> operator/(VectorizedArray<N, W> a, const N b)
{
  return a / VectorizedArray<N, W>(b);
}

// ---- elementwise math functions ----

template <typename N, unsigned int W>
inline VectorizedArray<N, W> sqrt(const VectorizedArray<N, W> &a)
{
  VectorizedArray<N, W> r;
  for (unsigned int l = 0; l < W; ++l)
    r[l] = std::sqrt(a[l]);
  return r;
}

template <typename N, unsigned int W>
inline VectorizedArray<N, W> abs(const VectorizedArray<N, W> &a)
{
  VectorizedArray<N, W> r;
  for (unsigned int l = 0; l < W; ++l)
    r[l] = std::abs(a[l]);
  return r;
}

template <typename N, unsigned int W>
inline VectorizedArray<N, W> max(const VectorizedArray<N, W> &a,
                                 const VectorizedArray<N, W> &b)
{
  VectorizedArray<N, W> r;
  for (unsigned int l = 0; l < W; ++l)
    r[l] = a[l] > b[l] ? a[l] : b[l];
  return r;
}

template <typename N, unsigned int W>
inline VectorizedArray<N, W> min(const VectorizedArray<N, W> &a,
                                 const VectorizedArray<N, W> &b)
{
  VectorizedArray<N, W> r;
  for (unsigned int l = 0; l < W; ++l)
    r[l] = a[l] < b[l] ? a[l] : b[l];
  return r;
}

/// Maximum over the lanes of a.
template <typename N, unsigned int W>
inline N max_over_lanes(const VectorizedArray<N, W> &a)
{
  N m = a[0];
  for (unsigned int l = 1; l < W; ++l)
    m = a[l] > m ? a[l] : m;
  return m;
}

// ---- AoS <-> SoA conversions (gather/scatter stage of the cell loops) ----

/// Reads n_entries contiguous values starting at base + offsets[l] for each
/// lane l and transposes them into out[0..n_entries) of VectorizedArray.
template <typename N, unsigned int W, typename Index>
inline void vectorized_load_and_transpose(const unsigned int n_entries,
                                          const N *base, const Index *offsets,
                                          VectorizedArray<N, W> *out)
{
  for (unsigned int i = 0; i < n_entries; ++i)
    for (unsigned int l = 0; l < W; ++l)
      out[i][l] = base[offsets[l] + i];
}

/// Inverse of vectorized_load_and_transpose; if @p add, accumulates.
template <typename N, unsigned int W, typename Index>
inline void vectorized_transpose_and_store(const bool add,
                                           const unsigned int n_entries,
                                           const VectorizedArray<N, W> *in,
                                           N *base, const Index *offsets)
{
  if (add)
    for (unsigned int i = 0; i < n_entries; ++i)
      for (unsigned int l = 0; l < W; ++l)
        base[offsets[l] + i] += in[i][l];
  else
    for (unsigned int i = 0; i < n_entries; ++i)
      for (unsigned int l = 0; l < W; ++l)
        base[offsets[l] + i] = in[i][l];
}

/// Type trait: the scalar value type behind either a plain scalar or a
/// VectorizedArray.
template <typename T>
struct scalar_value
{
  using type = T;
};
template <typename N, unsigned int W>
struct scalar_value<VectorizedArray<N, W>>
{
  using type = N;
};

} // namespace dgflow
