file(REMOVE_RECURSE
  "CMakeFiles/dgflow_amg.dir/amg/amg.cpp.o"
  "CMakeFiles/dgflow_amg.dir/amg/amg.cpp.o.d"
  "CMakeFiles/dgflow_amg.dir/amg/sparse_matrix.cpp.o"
  "CMakeFiles/dgflow_amg.dir/amg/sparse_matrix.cpp.o.d"
  "libdgflow_amg.a"
  "libdgflow_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgflow_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
