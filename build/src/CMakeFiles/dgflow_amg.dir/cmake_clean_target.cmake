file(REMOVE_RECURSE
  "libdgflow_amg.a"
)
