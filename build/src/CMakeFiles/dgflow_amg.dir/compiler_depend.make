# Empty compiler generated dependencies file for dgflow_amg.
# This may be replaced when dependencies are built.
