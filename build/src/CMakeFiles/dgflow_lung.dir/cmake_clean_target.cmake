file(REMOVE_RECURSE
  "libdgflow_lung.a"
)
