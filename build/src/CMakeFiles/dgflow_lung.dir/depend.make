# Empty dependencies file for dgflow_lung.
# This may be replaced when dependencies are built.
