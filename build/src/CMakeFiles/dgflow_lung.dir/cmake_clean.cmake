file(REMOVE_RECURSE
  "CMakeFiles/dgflow_lung.dir/lung/airway_tree.cpp.o"
  "CMakeFiles/dgflow_lung.dir/lung/airway_tree.cpp.o.d"
  "CMakeFiles/dgflow_lung.dir/lung/lung_mesh.cpp.o"
  "CMakeFiles/dgflow_lung.dir/lung/lung_mesh.cpp.o.d"
  "CMakeFiles/dgflow_lung.dir/lung/ventilation.cpp.o"
  "CMakeFiles/dgflow_lung.dir/lung/ventilation.cpp.o.d"
  "libdgflow_lung.a"
  "libdgflow_lung.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgflow_lung.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
