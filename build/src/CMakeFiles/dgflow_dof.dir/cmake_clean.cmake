file(REMOVE_RECURSE
  "CMakeFiles/dgflow_dof.dir/dof/dof_handler.cpp.o"
  "CMakeFiles/dgflow_dof.dir/dof/dof_handler.cpp.o.d"
  "libdgflow_dof.a"
  "libdgflow_dof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgflow_dof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
