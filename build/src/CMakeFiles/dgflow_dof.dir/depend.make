# Empty dependencies file for dgflow_dof.
# This may be replaced when dependencies are built.
