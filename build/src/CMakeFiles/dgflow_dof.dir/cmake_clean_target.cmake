file(REMOVE_RECURSE
  "libdgflow_dof.a"
)
