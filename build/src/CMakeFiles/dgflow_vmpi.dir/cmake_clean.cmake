file(REMOVE_RECURSE
  "CMakeFiles/dgflow_vmpi.dir/vmpi/communicator.cpp.o"
  "CMakeFiles/dgflow_vmpi.dir/vmpi/communicator.cpp.o.d"
  "libdgflow_vmpi.a"
  "libdgflow_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgflow_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
