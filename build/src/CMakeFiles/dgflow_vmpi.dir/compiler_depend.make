# Empty compiler generated dependencies file for dgflow_vmpi.
# This may be replaced when dependencies are built.
