file(REMOVE_RECURSE
  "libdgflow_vmpi.a"
)
