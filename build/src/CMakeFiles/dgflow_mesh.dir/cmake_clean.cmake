file(REMOVE_RECURSE
  "CMakeFiles/dgflow_mesh.dir/mesh/coarse_mesh.cpp.o"
  "CMakeFiles/dgflow_mesh.dir/mesh/coarse_mesh.cpp.o.d"
  "CMakeFiles/dgflow_mesh.dir/mesh/generators.cpp.o"
  "CMakeFiles/dgflow_mesh.dir/mesh/generators.cpp.o.d"
  "CMakeFiles/dgflow_mesh.dir/mesh/mesh.cpp.o"
  "CMakeFiles/dgflow_mesh.dir/mesh/mesh.cpp.o.d"
  "CMakeFiles/dgflow_mesh.dir/mesh/partition.cpp.o"
  "CMakeFiles/dgflow_mesh.dir/mesh/partition.cpp.o.d"
  "libdgflow_mesh.a"
  "libdgflow_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgflow_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
