file(REMOVE_RECURSE
  "libdgflow_mesh.a"
)
