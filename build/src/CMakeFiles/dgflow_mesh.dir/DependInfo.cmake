
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/coarse_mesh.cpp" "src/CMakeFiles/dgflow_mesh.dir/mesh/coarse_mesh.cpp.o" "gcc" "src/CMakeFiles/dgflow_mesh.dir/mesh/coarse_mesh.cpp.o.d"
  "/root/repo/src/mesh/generators.cpp" "src/CMakeFiles/dgflow_mesh.dir/mesh/generators.cpp.o" "gcc" "src/CMakeFiles/dgflow_mesh.dir/mesh/generators.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/CMakeFiles/dgflow_mesh.dir/mesh/mesh.cpp.o" "gcc" "src/CMakeFiles/dgflow_mesh.dir/mesh/mesh.cpp.o.d"
  "/root/repo/src/mesh/partition.cpp" "src/CMakeFiles/dgflow_mesh.dir/mesh/partition.cpp.o" "gcc" "src/CMakeFiles/dgflow_mesh.dir/mesh/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
