# Empty compiler generated dependencies file for dgflow_mesh.
# This may be replaced when dependencies are built.
