file(REMOVE_RECURSE
  "CMakeFiles/dgflow_perfmodel.dir/perfmodel/kernel_model.cpp.o"
  "CMakeFiles/dgflow_perfmodel.dir/perfmodel/kernel_model.cpp.o.d"
  "CMakeFiles/dgflow_perfmodel.dir/perfmodel/machine.cpp.o"
  "CMakeFiles/dgflow_perfmodel.dir/perfmodel/machine.cpp.o.d"
  "CMakeFiles/dgflow_perfmodel.dir/perfmodel/scaling_model.cpp.o"
  "CMakeFiles/dgflow_perfmodel.dir/perfmodel/scaling_model.cpp.o.d"
  "libdgflow_perfmodel.a"
  "libdgflow_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgflow_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
