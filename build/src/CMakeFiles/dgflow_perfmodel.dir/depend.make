# Empty dependencies file for dgflow_perfmodel.
# This may be replaced when dependencies are built.
