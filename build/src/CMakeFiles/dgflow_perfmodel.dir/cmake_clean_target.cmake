file(REMOVE_RECURSE
  "libdgflow_perfmodel.a"
)
