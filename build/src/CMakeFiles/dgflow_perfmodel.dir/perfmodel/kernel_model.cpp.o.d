src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/kernel_model.cpp.o: \
 /root/repo/src/perfmodel/kernel_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/perfmodel/kernel_model.h
