
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/kernel_model.cpp" "src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/kernel_model.cpp.o" "gcc" "src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/kernel_model.cpp.o.d"
  "/root/repo/src/perfmodel/machine.cpp" "src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/machine.cpp.o" "gcc" "src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/machine.cpp.o.d"
  "/root/repo/src/perfmodel/scaling_model.cpp" "src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/scaling_model.cpp.o" "gcc" "src/CMakeFiles/dgflow_perfmodel.dir/perfmodel/scaling_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
