# Empty dependencies file for bifurcation_flow.
# This may be replaced when dependencies are built.
