file(REMOVE_RECURSE
  "CMakeFiles/bifurcation_flow.dir/bifurcation_flow.cpp.o"
  "CMakeFiles/bifurcation_flow.dir/bifurcation_flow.cpp.o.d"
  "bifurcation_flow"
  "bifurcation_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bifurcation_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
