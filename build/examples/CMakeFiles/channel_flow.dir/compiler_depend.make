# Empty compiler generated dependencies file for channel_flow.
# This may be replaced when dependencies are built.
