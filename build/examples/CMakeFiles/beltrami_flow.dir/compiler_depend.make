# Empty compiler generated dependencies file for beltrami_flow.
# This may be replaced when dependencies are built.
