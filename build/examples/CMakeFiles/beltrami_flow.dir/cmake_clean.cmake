file(REMOVE_RECURSE
  "CMakeFiles/beltrami_flow.dir/beltrami_flow.cpp.o"
  "CMakeFiles/beltrami_flow.dir/beltrami_flow.cpp.o.d"
  "beltrami_flow"
  "beltrami_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beltrami_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
