# Empty dependencies file for lung_simulation.
# This may be replaced when dependencies are built.
