file(REMOVE_RECURSE
  "CMakeFiles/lung_simulation.dir/lung_simulation.cpp.o"
  "CMakeFiles/lung_simulation.dir/lung_simulation.cpp.o.d"
  "lung_simulation"
  "lung_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lung_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
