# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_aligned_vector[1]_include.cmake")
include("/root/repo/build/tests/test_vector[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_quadrature[1]_include.cmake")
include("/root/repo/build/tests/test_polynomial[1]_include.cmake")
include("/root/repo/build/tests/test_shape_info[1]_include.cmake")
include("/root/repo/build/tests/test_tensor_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_coarse_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_free[1]_include.cmake")
include("/root/repo/build/tests/test_laplace[1]_include.cmake")
include("/root/repo/build/tests/test_cfe_dof_handler[1]_include.cmake")
include("/root/repo/build/tests/test_multigrid[1]_include.cmake")
include("/root/repo/build/tests/test_amg[1]_include.cmake")
include("/root/repo/build/tests/test_incns_operators[1]_include.cmake")
include("/root/repo/build/tests/test_incns_solver[1]_include.cmake")
include("/root/repo/build/tests/test_lung[1]_include.cmake")
include("/root/repo/build/tests/test_vmpi[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_chebyshev[1]_include.cmake")
include("/root/repo/build/tests/test_lung_application[1]_include.cmake")
include("/root/repo/build/tests/test_vtk_writer[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_common_utils[1]_include.cmake")
include("/root/repo/build/tests/test_vmpi_distributed[1]_include.cmake")
