add_test([=[VTKWriterTest.WritesConsistentLegacyFile]=]  /root/repo/build/tests/test_vtk_writer [==[--gtest_filter=VTKWriterTest.WritesConsistentLegacyFile]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[VTKWriterTest.WritesConsistentLegacyFile]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_vtk_writer_TESTS VTKWriterTest.WritesConsistentLegacyFile)
