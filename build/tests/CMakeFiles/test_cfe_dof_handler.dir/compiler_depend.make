# Empty compiler generated dependencies file for test_cfe_dof_handler.
# This may be replaced when dependencies are built.
