file(REMOVE_RECURSE
  "CMakeFiles/test_cfe_dof_handler.dir/test_cfe_dof_handler.cpp.o"
  "CMakeFiles/test_cfe_dof_handler.dir/test_cfe_dof_handler.cpp.o.d"
  "test_cfe_dof_handler"
  "test_cfe_dof_handler.pdb"
  "test_cfe_dof_handler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfe_dof_handler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
