file(REMOVE_RECURSE
  "CMakeFiles/test_aligned_vector.dir/test_aligned_vector.cpp.o"
  "CMakeFiles/test_aligned_vector.dir/test_aligned_vector.cpp.o.d"
  "test_aligned_vector"
  "test_aligned_vector.pdb"
  "test_aligned_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aligned_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
