# Empty dependencies file for test_incns_operators.
# This may be replaced when dependencies are built.
