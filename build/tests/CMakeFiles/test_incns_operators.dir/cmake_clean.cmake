file(REMOVE_RECURSE
  "CMakeFiles/test_incns_operators.dir/test_incns_operators.cpp.o"
  "CMakeFiles/test_incns_operators.dir/test_incns_operators.cpp.o.d"
  "test_incns_operators"
  "test_incns_operators.pdb"
  "test_incns_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incns_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
