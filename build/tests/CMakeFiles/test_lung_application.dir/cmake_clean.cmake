file(REMOVE_RECURSE
  "CMakeFiles/test_lung_application.dir/test_lung_application.cpp.o"
  "CMakeFiles/test_lung_application.dir/test_lung_application.cpp.o.d"
  "test_lung_application"
  "test_lung_application.pdb"
  "test_lung_application[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lung_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
