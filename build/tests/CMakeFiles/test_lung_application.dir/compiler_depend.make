# Empty compiler generated dependencies file for test_lung_application.
# This may be replaced when dependencies are built.
