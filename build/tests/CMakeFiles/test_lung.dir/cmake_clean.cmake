file(REMOVE_RECURSE
  "CMakeFiles/test_lung.dir/test_lung.cpp.o"
  "CMakeFiles/test_lung.dir/test_lung.cpp.o.d"
  "test_lung"
  "test_lung.pdb"
  "test_lung[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lung.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
