# Empty dependencies file for test_lung.
# This may be replaced when dependencies are built.
