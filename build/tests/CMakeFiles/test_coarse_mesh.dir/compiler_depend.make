# Empty compiler generated dependencies file for test_coarse_mesh.
# This may be replaced when dependencies are built.
