file(REMOVE_RECURSE
  "CMakeFiles/test_coarse_mesh.dir/test_coarse_mesh.cpp.o"
  "CMakeFiles/test_coarse_mesh.dir/test_coarse_mesh.cpp.o.d"
  "test_coarse_mesh"
  "test_coarse_mesh.pdb"
  "test_coarse_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarse_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
