file(REMOVE_RECURSE
  "CMakeFiles/test_mesh_fuzz.dir/test_mesh_fuzz.cpp.o"
  "CMakeFiles/test_mesh_fuzz.dir/test_mesh_fuzz.cpp.o.d"
  "test_mesh_fuzz"
  "test_mesh_fuzz.pdb"
  "test_mesh_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
