# Empty compiler generated dependencies file for test_mesh_fuzz.
# This may be replaced when dependencies are built.
