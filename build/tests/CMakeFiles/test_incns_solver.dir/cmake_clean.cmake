file(REMOVE_RECURSE
  "CMakeFiles/test_incns_solver.dir/test_incns_solver.cpp.o"
  "CMakeFiles/test_incns_solver.dir/test_incns_solver.cpp.o.d"
  "test_incns_solver"
  "test_incns_solver.pdb"
  "test_incns_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incns_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
