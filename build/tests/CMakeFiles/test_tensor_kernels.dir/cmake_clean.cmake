file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_kernels.dir/test_tensor_kernels.cpp.o"
  "CMakeFiles/test_tensor_kernels.dir/test_tensor_kernels.cpp.o.d"
  "test_tensor_kernels"
  "test_tensor_kernels.pdb"
  "test_tensor_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
