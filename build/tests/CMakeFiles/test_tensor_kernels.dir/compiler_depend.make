# Empty compiler generated dependencies file for test_tensor_kernels.
# This may be replaced when dependencies are built.
