file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_free.dir/test_matrix_free.cpp.o"
  "CMakeFiles/test_matrix_free.dir/test_matrix_free.cpp.o.d"
  "test_matrix_free"
  "test_matrix_free.pdb"
  "test_matrix_free[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
