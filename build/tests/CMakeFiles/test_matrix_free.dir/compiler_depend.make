# Empty compiler generated dependencies file for test_matrix_free.
# This may be replaced when dependencies are built.
