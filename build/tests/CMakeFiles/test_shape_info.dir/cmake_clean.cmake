file(REMOVE_RECURSE
  "CMakeFiles/test_shape_info.dir/test_shape_info.cpp.o"
  "CMakeFiles/test_shape_info.dir/test_shape_info.cpp.o.d"
  "test_shape_info"
  "test_shape_info.pdb"
  "test_shape_info[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shape_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
