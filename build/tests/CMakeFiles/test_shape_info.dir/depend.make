# Empty dependencies file for test_shape_info.
# This may be replaced when dependencies are built.
