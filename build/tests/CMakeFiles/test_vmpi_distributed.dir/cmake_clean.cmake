file(REMOVE_RECURSE
  "CMakeFiles/test_vmpi_distributed.dir/test_vmpi_distributed.cpp.o"
  "CMakeFiles/test_vmpi_distributed.dir/test_vmpi_distributed.cpp.o.d"
  "test_vmpi_distributed"
  "test_vmpi_distributed.pdb"
  "test_vmpi_distributed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmpi_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
