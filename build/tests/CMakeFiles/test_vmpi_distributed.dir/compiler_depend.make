# Empty compiler generated dependencies file for test_vmpi_distributed.
# This may be replaced when dependencies are built.
