# Empty compiler generated dependencies file for table2_lung_application.
# This may be replaced when dependencies are built.
