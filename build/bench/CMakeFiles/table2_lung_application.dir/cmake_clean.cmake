file(REMOVE_RECURSE
  "CMakeFiles/table2_lung_application.dir/table2_lung_application.cpp.o"
  "CMakeFiles/table2_lung_application.dir/table2_lung_application.cpp.o.d"
  "table2_lung_application"
  "table2_lung_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lung_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
