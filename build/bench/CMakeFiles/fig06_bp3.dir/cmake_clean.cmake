file(REMOVE_RECURSE
  "CMakeFiles/fig06_bp3.dir/fig06_bp3.cpp.o"
  "CMakeFiles/fig06_bp3.dir/fig06_bp3.cpp.o.d"
  "fig06_bp3"
  "fig06_bp3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bp3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
