# Empty compiler generated dependencies file for fig06_bp3.
# This may be replaced when dependencies are built.
