# Empty dependencies file for fig08_matvec_scaling.
# This may be replaced when dependencies are built.
