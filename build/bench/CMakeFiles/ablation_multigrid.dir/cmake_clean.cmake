file(REMOVE_RECURSE
  "CMakeFiles/ablation_multigrid.dir/ablation_multigrid.cpp.o"
  "CMakeFiles/ablation_multigrid.dir/ablation_multigrid.cpp.o.d"
  "ablation_multigrid"
  "ablation_multigrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multigrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
