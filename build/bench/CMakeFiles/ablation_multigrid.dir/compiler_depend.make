# Empty compiler generated dependencies file for ablation_multigrid.
# This may be replaced when dependencies are built.
