# Empty dependencies file for fig07_roofline.
# This may be replaced when dependencies are built.
