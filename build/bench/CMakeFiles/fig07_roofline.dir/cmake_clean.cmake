file(REMOVE_RECURSE
  "CMakeFiles/fig07_roofline.dir/fig07_roofline.cpp.o"
  "CMakeFiles/fig07_roofline.dir/fig07_roofline.cpp.o.d"
  "fig07_roofline"
  "fig07_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
