file(REMOVE_RECURSE
  "CMakeFiles/ablation_evenodd.dir/ablation_evenodd.cpp.o"
  "CMakeFiles/ablation_evenodd.dir/ablation_evenodd.cpp.o.d"
  "ablation_evenodd"
  "ablation_evenodd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_evenodd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
