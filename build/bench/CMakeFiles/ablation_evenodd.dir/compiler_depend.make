# Empty compiler generated dependencies file for ablation_evenodd.
# This may be replaced when dependencies are built.
