# Empty compiler generated dependencies file for fig09_bifurcation_scaling.
# This may be replaced when dependencies are built.
