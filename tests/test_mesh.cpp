#include <gtest/gtest.h>

#include <set>

#include "mesh/generators.h"
#include "mesh/mesh.h"
#include "mesh/partition.h"

using namespace dgflow;

TEST(MeshUniform, RefinementCounts)
{
  Mesh mesh(unit_cube());
  EXPECT_EQ(mesh.n_active_cells(), 1u);
  mesh.refine_uniform(3);
  EXPECT_EQ(mesh.n_active_cells(), 512u);
  const auto hist = mesh.level_histogram();
  EXPECT_EQ(hist[3], 512u);
  EXPECT_EQ(hist[2], 0u);
}

TEST(MeshUniform, FaceCountsOnRefinedCube)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2); // 4x4x4 cells
  const auto faces = mesh.build_face_list();
  unsigned int n_boundary = 0, n_interior = 0, n_hanging = 0;
  for (const auto &f : faces)
  {
    if (f.is_boundary())
      ++n_boundary;
    else
      ++n_interior;
    if (f.is_hanging())
      ++n_hanging;
  }
  EXPECT_EQ(n_boundary, 6u * 16u);
  EXPECT_EQ(n_interior, 3u * 16u * 3u); // 3 * m^2 * (m-1), m=4
  EXPECT_EQ(n_hanging, 0u);
}

TEST(MeshUniform, NeighborsAreConsistent)
{
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}}));
  mesh.refine_uniform(1);
  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const auto nb = mesh.neighbor(i, f);
      if (nb.kind == Mesh::NeighborInfo::Kind::same_level)
      {
        const auto back = mesh.neighbor(nb.cell, nb.face_no);
        ASSERT_EQ(back.kind, Mesh::NeighborInfo::Kind::same_level);
        EXPECT_EQ(back.cell, i);
        EXPECT_EQ(back.face_no, f);
        EXPECT_EQ(back.orientation, inverse_orientation(nb.orientation));
      }
    }
}

TEST(MeshAdaptive, LocalRefinementProducesHangingFaces)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1); // 8 cells
  std::vector<bool> flags(8, false);
  flags[0] = true;
  mesh.refine(flags);
  EXPECT_EQ(mesh.n_active_cells(), 7u + 8u);

  const auto faces = mesh.build_face_list();
  unsigned int n_hanging = 0;
  for (const auto &f : faces)
    if (f.is_hanging())
    {
      ++n_hanging;
      // fine side is minus: minus cell has higher level
      EXPECT_GT(mesh.cell(f.cell_m).level, mesh.cell(f.cell_p).level);
    }
  // refined corner cell: 3 faces to same-level former siblings, each split
  // into 4 subfaces
  EXPECT_EQ(n_hanging, 12u);
}

TEST(MeshAdaptive, TwoToOneBalanceEnforced)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  // refine the corner cell twice; balance must refine its neighbors once
  std::vector<bool> flags(mesh.n_active_cells(), false);
  flags[0] = true;
  mesh.refine(flags);
  std::vector<bool> flags2(mesh.n_active_cells(), false);
  // find a level-2 corner cell and refine it
  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    if (mesh.cell(i).level == 2 && mesh.cell(i).x == 0 && mesh.cell(i).y == 0 &&
        mesh.cell(i).z == 0)
      flags2[i] = true;
  mesh.refine(flags2);

  // verify: no face or edge neighbor differs by more than one level
  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const auto nb = mesh.neighbor(i, f); // asserts internally on violation
      if (nb.kind == Mesh::NeighborInfo::Kind::coarser)
        EXPECT_EQ(mesh.cell(nb.cell).level + 1, mesh.cell(i).level);
    }
}

TEST(MeshAdaptive, SubfacePositionsCoverCoarseFace)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  mesh.refine(flags);
  // group hanging faces by their coarse (plus) cell+face; each group must
  // contain all four subface positions
  std::map<std::pair<index_t, unsigned int>, std::set<unsigned int>> groups;
  for (const auto &f : mesh.build_face_list())
    if (f.is_hanging())
      groups[{f.cell_p, f.face_no_p}].insert(f.subface0 + 2 * f.subface1);
  EXPECT_EQ(groups.size(), 3u);
  for (const auto &[key, subs] : groups)
    EXPECT_EQ(subs.size(), 4u);
}

TEST(MeshCrossTree, RotatedTreesRefineConsistently)
{
  // same rotated two-cube setup as the coarse-mesh test
  std::vector<Point> vertices;
  for (unsigned int v = 0; v < 8; ++v)
    vertices.push_back(Point(v & 1, (v >> 1) & 1, (v >> 2) & 1));
  auto add_vertex = [&](const Point &p) {
    for (index_t i = 0; i < vertices.size(); ++i)
      if (norm(vertices[i] - p) < 1e-12)
        return i;
    vertices.push_back(p);
    return index_t(vertices.size() - 1);
  };
  std::vector<std::array<index_t, 8>> cells(2);
  for (unsigned int v = 0; v < 8; ++v)
  {
    const double a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    cells[0][v] = v;
    cells[1][v] = add_vertex(Point(1 + c, b, 1 - a));
  }
  Mesh mesh(from_lists(std::move(vertices), std::move(cells)));
  mesh.refine_uniform(2);
  EXPECT_EQ(mesh.n_active_cells(), 128u);

  // every interior face must be consistent from both sides
  unsigned int n_cross = 0;
  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const auto nb = mesh.neighbor(i, f);
      if (nb.kind != Mesh::NeighborInfo::Kind::same_level)
        continue;
      const auto back = mesh.neighbor(nb.cell, nb.face_no);
      ASSERT_EQ(back.kind, Mesh::NeighborInfo::Kind::same_level);
      EXPECT_EQ(back.cell, i);
      if (mesh.cell(i).tree != mesh.cell(nb.cell).tree)
      {
        ++n_cross;
        EXPECT_NE(nb.orientation, 0);
      }
    }
  EXPECT_EQ(n_cross, 2u * 16u); // 4x4 cross-tree faces, seen from both sides
}

TEST(MeshCrossTree, HangingAcrossRotatedTreeBoundary)
{
  std::vector<Point> vertices;
  for (unsigned int v = 0; v < 8; ++v)
    vertices.push_back(Point(v & 1, (v >> 1) & 1, (v >> 2) & 1));
  auto add_vertex = [&](const Point &p) {
    for (index_t i = 0; i < vertices.size(); ++i)
      if (norm(vertices[i] - p) < 1e-12)
        return i;
    vertices.push_back(p);
    return index_t(vertices.size() - 1);
  };
  std::vector<std::array<index_t, 8>> cells(2);
  for (unsigned int v = 0; v < 8; ++v)
  {
    const double a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    cells[0][v] = v;
    cells[1][v] = add_vertex(Point(1 + c, b, 1 - a));
  }
  Mesh mesh(from_lists(std::move(vertices), std::move(cells)));
  // refine only tree 0: its +x faces hang w.r.t. tree 1
  std::vector<bool> flags = {true, false};
  mesh.refine(flags);
  ASSERT_EQ(mesh.n_active_cells(), 9u);

  unsigned int n_hanging = 0;
  for (const auto &f : mesh.build_face_list())
    if (f.is_hanging())
    {
      ++n_hanging;
      EXPECT_NE(mesh.cell(f.cell_m).tree, mesh.cell(f.cell_p).tree);
      EXPECT_NE(f.orientation, 0);
    }
  EXPECT_EQ(n_hanging, 4u);
}

TEST(MeshPartition, SfcPartitionIsBalancedAndContiguous)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(3); // 512 cells
  const int n_ranks = 7;
  const auto rank = partition_cells(mesh, n_ranks);
  const auto stats = compute_partition_stats(mesh, rank, n_ranks);
  // contiguity in SFC order
  for (std::size_t i = 1; i < rank.size(); ++i)
    EXPECT_GE(rank[i], rank[i - 1]);
  // balance within one cell
  std::size_t mn = 1u << 30, mx = 0;
  for (const auto c : stats.cells_per_rank)
  {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_LE(mx - mn, 1u);
  // SFC locality: each rank talks to a small number of neighbors
  EXPECT_LE(stats.max_neighbors, std::size_t(n_ranks - 1));
  EXPECT_GT(stats.max_cut_faces, 0u);
}
