#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "incns/analytic_flows.h"
#include "incns/solver.h"
#include "mesh/generators.h"
#include "resilience/recovering_solver.h"
#include "solvers/cg.h"
#include "solvers/chebyshev.h"
#include "timeint/bdf.h"

using namespace dgflow;

namespace
{
constexpr double NaN = std::numeric_limits<double>::quiet_NaN();

/// A = s * I.
struct ScaledIdentity
{
  double s = 1.;
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    dst.reinit(src.size(), true);
    dst.equ(s, src);
  }
};

/// Always produces NaN (models an operator fed a poisoned state).
struct NaNOperator
{
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    dst.reinit(src.size(), true);
    dst = NaN;
  }
};

/// A = 0 (degenerate operator; breaks eigenvalue estimation immediately).
struct ZeroOperator
{
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    dst.reinit(src.size(), true);
    dst = 0.;
  }
};

/// 2x2 blocks [[c, 1], [-1, c]]: positive definite (x^T A x = c|x|^2) but
/// strongly nonsymmetric, so CG's residual recurrence grows monotonically —
/// a deterministic stagnation/divergence case with pAp > 0 throughout.
struct RotationDominantOperator
{
  double c = 0.1;
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    dst.reinit(src.size(), true);
    for (std::size_t i = 0; i + 1 < src.size(); i += 2)
    {
      dst[i] = c * src[i] + src[i + 1];
      dst[i + 1] = -src[i] + c * src[i + 1];
    }
  }
};

FlowBoundaryMap ethier_steinman_bc(const EthierSteinman &es)
{
  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [es](const Point &p, double t) { return es.pressure(p, t); };
      b.backflow_stabilization = false;
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [es](const Point &p, double t) { return es.velocity(p, t); };
      b.velocity_dt = [es](const Point &p, double t) {
        return es.velocity_dt(p, t);
      };
    }
    bc[id] = b;
  }
  return bc;
}

INSSolver<double>::Parameters es_parameters(const EthierSteinman &es,
                                            const double dt)
{
  INSSolver<double>::Parameters prm;
  prm.degree = 3;
  prm.viscosity = es.nu;
  prm.fixed_dt = dt;
  prm.rel_tol_pressure = 1e-8;
  prm.rel_tol_viscous = 1e-8;
  prm.rel_tol_projection = 1e-8;
  return prm;
}
} // namespace

TEST(CGResilienceTest, BreakdownReturnsFailedStatsInsteadOfAborting)
{
  const ScaledIdentity A{-1.}; // negative definite: pAp < 0 in step one
  Vector<double> x(10), b(10);
  b = 1.;
  PreconditionIdentity P;
  SolverControl control;
  control.rel_tol = 1e-10;
  const SolveStats stats = solve_cg(A, x, b, P, control);
  EXPECT_FALSE(stats.converged);
  EXPECT_TRUE(stats.failed());
  EXPECT_TRUE(stats.breakdown);
  EXPECT_EQ(stats.failure, SolveFailure::breakdown);
}

TEST(CGResilienceTest, NonFiniteResidualIsDetectedImmediately)
{
  const NaNOperator A;
  Vector<double> x(8), b(8);
  b = 1.;
  PreconditionIdentity P;
  SolverControl control;
  const SolveStats stats = solve_cg(A, x, b, P, control);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.failure, SolveFailure::non_finite);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(CGResilienceTest, StagnationIsDetectedAfterTheConfiguredWindow)
{
  const RotationDominantOperator A;
  Vector<double> x(20), b(20);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = 1. + 0.1 * double(i);
  PreconditionIdentity P;
  SolverControl control;
  control.rel_tol = 1e-12;
  control.max_iterations = 10000;
  control.stagnation_window = 10;
  const SolveStats stats = solve_cg(A, x, b, P, control);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.failure, SolveFailure::stagnation);
  // fired at the window, not after max_iterations
  EXPECT_LE(stats.iterations, 20u);
}

TEST(CGResilienceTest, ZeroStagnationWindowDisablesTheCheck)
{
  const RotationDominantOperator A;
  Vector<double> x(8), b(8);
  b = 1.;
  PreconditionIdentity P;
  SolverControl control;
  control.rel_tol = 1e-12;
  control.max_iterations = 50;
  control.stagnation_window = 0;
  const SolveStats stats = solve_cg(A, x, b, P, control);
  EXPECT_FALSE(stats.converged);
  // runs to the iteration cap (or a non-finite overflow), never "stagnation"
  EXPECT_NE(stats.failure, SolveFailure::stagnation);
}

TEST(ChebyshevResilienceTest, EstimationBreakdownFallsBackToSafeBounds)
{
  const ZeroOperator op;
  Vector<double> diag(16);
  diag = 1.;
  ChebyshevSmoother<ZeroOperator, Vector<double>> cheb;
  cheb.reinit(op, diag);
  EXPECT_FALSE(cheb.setup_stats().converged);
  EXPECT_EQ(cheb.setup_stats().failure, SolveFailure::breakdown);
  EXPECT_DOUBLE_EQ(cheb.max_eigenvalue(), 1.2); // the conservative fallback

  // the smoother stays usable: a sweep on the degenerate operator is finite
  Vector<double> x(16), b(16);
  b = 1.;
  const SolveStats sweep = cheb.smooth_checked(x, b, true);
  EXPECT_TRUE(sweep.converged);
}

TEST(ChebyshevResilienceTest, NonFiniteDiagonalAndSweepAreDetected)
{
  const NaNOperator op;
  Vector<double> diag(8);
  diag = 1.;
  diag[3] = NaN;
  ChebyshevSmoother<NaNOperator, Vector<double>> cheb;
  cheb.reinit(op, diag);
  EXPECT_FALSE(cheb.setup_stats().converged);
  EXPECT_EQ(cheb.setup_stats().failure, SolveFailure::non_finite);

  Vector<double> x(8), b(8);
  b = 1.;
  const SolveStats sweep = cheb.smooth_checked(x, b, true);
  EXPECT_FALSE(sweep.converged);
  EXPECT_EQ(sweep.failure, SolveFailure::non_finite);
}

TEST(RecoveringSolverTest, FallsBackRestoresGuessAndDemotes)
{
  resilience::RecoveringSolver<double> ladder;
  int bad_calls = 0, good_calls = 0;
  ladder.add_rung(
    "bad",
    [&](Vector<double> &x, const Vector<double> &) {
      ++bad_calls;
      x = NaN; // poison the iterate; the ladder must restore it
      SolveStats s;
      s.failure = SolveFailure::non_finite;
      return s;
    },
    /*demote_on_failure=*/true);
  ladder.add_rung("good", [&](Vector<double> &x, const Vector<double> &b) {
    ++good_calls;
    EXPECT_TRUE(std::isfinite(double(x.l2_norm())))
      << "failed rung's poisoned iterate leaked into the next rung";
    x = b;
    SolveStats s;
    s.converged = true;
    return s;
  });

  Vector<double> x(4), b(4);
  b = 2.;
  const SolveStats first = ladder.solve(x, b);
  EXPECT_TRUE(first.converged);
  EXPECT_EQ(ladder.last_rung(), "good");
  EXPECT_EQ(ladder.recoveries(), 1ull);
  EXPECT_TRUE(ladder.rung_disabled(0));
  EXPECT_EQ(ladder.rung_failures(0), 1ull);
  EXPECT_DOUBLE_EQ(x[0], 2.);

  const SolveStats second = ladder.solve(x, b);
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(bad_calls, 1) << "demoted rung must not be retried";
  EXPECT_EQ(good_calls, 2);
  EXPECT_EQ(ladder.recoveries(), 1ull) << "direct hit is not a recovery";
}

TEST(RecoveringSolverTest, ThrowingRungIsCaughtAndLadderContinues)
{
  resilience::RecoveringSolver<double> ladder;
  ladder.add_rung("throws", [](Vector<double> &, const Vector<double> &)
                    -> SolveStats {
    throw std::runtime_error("V-cycle overflow");
  });
  ladder.add_rung("good", [](Vector<double> &x, const Vector<double> &b) {
    x = b;
    SolveStats s;
    s.converged = true;
    return s;
  });
  Vector<double> x(4), b(4);
  b = 1.;
  const SolveStats stats = ladder.solve(x, b);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(ladder.last_rung(), "good");
  EXPECT_EQ(ladder.rung_failures(0), 1ull);
}

TEST(RecoveringSolverTest, ExhaustedLadderReturnsFailedStats)
{
  resilience::RecoveringSolver<double> ladder;
  ladder.add_rung("fail1", [](Vector<double> &, const Vector<double> &) {
    SolveStats s;
    s.failure = SolveFailure::max_iterations;
    return s;
  });
  ladder.add_rung("fail2", [](Vector<double> &, const Vector<double> &) {
    SolveStats s;
    s.failure = SolveFailure::stagnation;
    return s;
  });
  Vector<double> x(4), b(4);
  b = 1.;
  const SolveStats stats = ladder.solve(x, b);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.failure, SolveFailure::stagnation); // the last rung's reason
  EXPECT_EQ(ladder.last_rung(), "exhausted");
}

TEST(ResilienceGuardsTest, JacobiReinitRejectsNonFiniteDiagonal)
{
  Vector<double> diag(4);
  diag = 1.;
  diag[2] = NaN;
  PreconditionJacobi<double> jacobi;
  EXPECT_THROW(jacobi.reinit(diag), std::runtime_error);
}

TEST(ResilienceGuardsTest, TimeStepControlRejectsNonFiniteInput)
{
  const TimeStepControl control(0.4, 3);
  EXPECT_GT(control.next(0.1, 0.), 0.);
  EXPECT_THROW(control.next(NaN, 0.01), std::runtime_error);
  EXPECT_THROW(control.next(-1., 0.01), std::runtime_error);
  EXPECT_THROW(control.next(0.1, NaN), std::runtime_error);
}

TEST(INSSolverResilienceTest, InjectedFaultTriggersRejectionAndRecovery)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  auto prm = es_parameters(es, 5e-3);
  // inject a NaN into the intermediate velocity of step 1, first attempt
  prm.inject_substep_fault = [](const unsigned long step,
                                const unsigned int attempt) {
    return step == 1 && attempt == 0;
  };
  solver.setup(mesh, geom, ethier_steinman_bc(es), prm);
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });

  const auto info0 = solver.advance();
  EXPECT_EQ(info0.rejections, 0u);
  EXPECT_TRUE(info0.success);
  EXPECT_DOUBLE_EQ(info0.dt, 5e-3);

  const auto info1 = solver.advance();
  EXPECT_TRUE(info1.success);
  EXPECT_EQ(info1.rejections, 1u);
  EXPECT_DOUBLE_EQ(info1.dt, 2.5e-3) << "rejected step must halve dt";
  EXPECT_TRUE(std::isfinite(double(solver.velocity().l2_norm())));
  EXPECT_TRUE(std::isfinite(double(solver.pressure().l2_norm())));
  // the bad right-hand side must not have demoted the multigrid rung
  EXPECT_FALSE(solver.pressure_solver().rung_disabled(0));

  const auto info2 = solver.advance();
  EXPECT_EQ(info2.rejections, 0u);
  EXPECT_TRUE(info2.success);
  EXPECT_NEAR(solver.time(), 5e-3 + 2.5e-3 + 5e-3, 1e-12);
}

TEST(INSSolverResilienceTest, ExhaustedRejectionBudgetThrowsRecoverably)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  auto prm = es_parameters(es, 5e-3);
  prm.max_step_rejections = 2;
  prm.inject_substep_fault = [](unsigned long, unsigned int) { return true; };
  solver.setup(mesh, geom, ethier_steinman_bc(es), prm);
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });
  // a recoverable exception, not an abort
  EXPECT_THROW(solver.advance(), std::runtime_error);
}
