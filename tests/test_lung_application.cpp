#include <gtest/gtest.h>

#include "lung/lung_application.h"

using namespace dgflow;

TEST(LungApplicationTest, SetupWiresAllBoundaries)
{
  LungApplicationParameters prm;
  prm.generations = 1;
  LungApplication app(prm);
  EXPECT_EQ(app.ventilation().n_outlets(), 2u);
  EXPECT_GT(app.mesh().n_active_cells(), 100u);
  EXPECT_EQ(app.solver().time(), 0.);
}

TEST(LungApplicationTest, VentilationRunsStablyAndInhales)
{
  LungApplicationParameters prm;
  prm.generations = 1;
  LungApplication app(prm);

  double last_dt = 0;
  for (unsigned int step = 0; step < 120; ++step)
  {
    const auto info = app.advance();
    ASSERT_GT(info.dt, 0.);
    ASSERT_LT(app.solver().divergence_l2(), 10.)
      << "divergence blew up at step " << step;
    last_dt = info.dt;
  }
  // flow has developed: the CFL step dropped below the startup cap and a
  // measurable volume has entered the lung
  EXPECT_LT(last_dt, 2e-4);
  EXPECT_GT(app.ventilation().inhaled_volume_current_cycle(), 1e-7)
    << "no volume inhaled";
  // inflow magnitude in the physiological range (well below 10 l/s)
  const double q_in = -app.solver().boundary_flux(LungMesh::inlet_id);
  EXPECT_GT(q_in, 0.);
  EXPECT_LT(q_in, 10. * liter);
}

TEST(LungApplicationTest, StepsPerCycleMatchesPaperOrder)
{
  LungApplicationParameters prm;
  prm.generations = 1;
  LungApplication app(prm);
  for (unsigned int step = 0; step < 150; ++step)
    app.advance();
  // paper Table 2: 1.8e5 steps/cycle at g=3; the g=1 bifurcation with the
  // same trachea resolution lands in the 1e4..1e7 decade
  const double steps = app.estimated_steps_per_cycle();
  EXPECT_GT(steps, 1e4);
  EXPECT_LT(steps, 1e7);
}

TEST(LungApplicationTest, OutletPressuresRespondToFlow)
{
  LungApplicationParameters prm;
  prm.generations = 1;
  LungApplication app(prm);
  for (unsigned int step = 0; step < 120; ++step)
    app.advance();
  // with inflow established, the compartments hold volume and pressure
  bool any_pressurized = false;
  for (unsigned int o = 0; o < app.ventilation().n_outlets(); ++o)
    any_pressurized |= app.ventilation().outlet_pressure(o) > 0.;
  EXPECT_TRUE(any_pressurized);
}
