#include <gtest/gtest.h>

#include "perfmodel/scaling_model.h"

using namespace dgflow;

TEST(KernelModelTest, IntensityGrowsWithDegree)
{
  double prev = 0;
  for (unsigned int k = 1; k <= 6; ++k)
  {
    KernelModel m{k, 8};
    const double ai = m.arithmetic_intensity_ideal();
    EXPECT_GT(ai, prev);
    prev = ai;
    // CFD-typical range: O(0.1..10) flop/byte
    EXPECT_GT(ai, 0.2);
    EXPECT_LT(ai, 20.);
    EXPECT_LT(m.arithmetic_intensity_measured(),
              m.arithmetic_intensity_ideal());
  }
}

TEST(KernelModelTest, SinglePrecisionHalvesBytes)
{
  KernelModel dp{3, 8}, sp{3, 4};
  EXPECT_NEAR(sp.ideal_bytes_per_dof() / dp.ideal_bytes_per_dof(), 0.5, 0.05);
  EXPECT_DOUBLE_EQ(sp.flops_per_dof(), dp.flops_per_dof());
}

TEST(ScalingModelTest, SaturatedThroughputMatchesBandwidthLimit)
{
  ScalingModel model;
  const double t = model.matvec_throughput(1e8, 3, 1.);
  // paper Fig. 6: ~1.4e9 DoF/s per Skylake node at k=3
  EXPECT_GT(t, 5e8);
  EXPECT_LT(t, 5e9);
}

TEST(ScalingModelTest, StrongScalingHasLatencyFloor)
{
  ScalingModel model;
  // runtime decreases with nodes, then floors near 1e-4 s (paper Fig. 8)
  double prev_time = 1e30;
  double floor_time = 0;
  for (double nodes = 1; nodes <= 4096; nodes *= 2)
  {
    const double t = model.matvec_time(2.2e7, 3, nodes);
    EXPECT_LT(t, prev_time * 1.05);
    prev_time = t;
    floor_time = t;
  }
  EXPECT_GT(floor_time, 5e-6);
  EXPECT_LT(floor_time, 5e-4);
}

TEST(ScalingModelTest, CacheRegimeBoostsThroughput)
{
  ScalingModel model;
  // mid-size problems that fit the aggregate cache run faster than the
  // saturated bandwidth limit (the double bump of Fig. 8)
  const double t_big = model.matvec_throughput(8e9, 3, 64.);
  const double t_cache = model.matvec_throughput(64. * 8e5, 3, 64.);
  EXPECT_GT(t_cache, 1.5 * t_big);
}

TEST(MachineModelTest, EffectiveBandwidthScalesLinearlyThenSaturates)
{
  const MachineModel m = MachineModel::supermuc_ng();
  // one streaming core draws its single-core fraction of the node rate
  EXPECT_DOUBLE_EQ(m.effective_bandwidth(1.),
                   m.memory_bandwidth * m.single_core_bandwidth_fraction);
  // monotone in the active core count, saturating at the full stream rate
  double prev = 0;
  for (double cores = 1; cores <= m.cores_per_node; cores *= 2)
  {
    const double bw = m.effective_bandwidth(cores);
    EXPECT_GE(bw, prev);
    EXPECT_LE(bw, m.memory_bandwidth);
    prev = bw;
  }
  EXPECT_DOUBLE_EQ(m.effective_bandwidth(m.cores_per_node),
                   m.memory_bandwidth);
  // a default-constructed machine keeps the pre-threading behavior: a
  // single core already saturates the node
  const MachineModel d;
  EXPECT_DOUBLE_EQ(d.effective_bandwidth(1.), d.memory_bandwidth);
}

TEST(ScalingModelTest, DefaultThreadingReproducesSaturatedModel)
{
  // threads_per_rank = 1 with a fully populated node must not change any
  // previous prediction: 48 ranks x 1 thread already saturate the memory
  // system of the SuperMUC-NG model
  ScalingModel model;
  EXPECT_DOUBLE_EQ(model.threads_per_rank, 1.);
  const double t_default = model.matvec_time(1e8, 3, 1.);
  ScalingModel threaded = model;
  threaded.threads_per_rank = 8.;
  EXPECT_DOUBLE_EQ(threaded.matvec_time(1e8, 3, 1.), t_default);

  // an underpopulated node (few ranks) gains from pool threads: more
  // streaming cores reach more of the shared bandwidth
  ScalingModel sparse = model;
  sparse.machine.mpi_ranks_per_node = 2;
  const double t_serial = sparse.matvec_time(1e8, 3, 1.);
  sparse.threads_per_rank = 8.;
  const double t_threads = sparse.matvec_time(1e8, 3, 1.);
  EXPECT_LT(t_threads, t_serial);
}

TEST(ScalingModelTest, PoissonSolveFloorsAroundPaperValues)
{
  ScalingModel model;
  ScalingModel::MultigridConfig config;
  config.cg_iterations = 9;
  // strong scaling of the 1e9-DoF bifurcation case: minimal time O(0.1 s)
  double best = 1e30;
  for (double nodes = 64; nodes <= 6400; nodes *= 2)
    best = std::min(best, model.poisson_solve_time(1e9, nodes, config));
  EXPECT_GT(best, 0.01);
  EXPECT_LT(best, 1.0);
}

// ---------------------------------------------------------------------------
// DeviceModel: the HBM-class APU projection printed next to the host roofs
// by fig07_roofline and kernels_microbench.
// ---------------------------------------------------------------------------

#include "perfmodel/device_model.h"

TEST(DeviceModelTest, RooflineIsMinOfBandwidthAndPeak)
{
  const DeviceModel d = DeviceModel::mi300a();
  EXPECT_GT(d.hbm_bandwidth, 0.);
  EXPECT_GT(d.dp_peak_flops, 0.);
  EXPECT_GT(d.sp_peak_flops, d.dp_peak_flops);
  // far left of the ridge: bandwidth-bound; far right: compute-bound
  EXPECT_DOUBLE_EQ(d.roof(1e-3), d.hbm_bandwidth * 1e-3);
  EXPECT_DOUBLE_EQ(d.roof(1e6), d.dp_peak_flops);
  const double ridge = d.dp_peak_flops / d.hbm_bandwidth;
  EXPECT_DOUBLE_EQ(d.roof(ridge), d.dp_peak_flops);
}

TEST(DeviceModelTest, ProjectionPicksTheBindingResource)
{
  const DeviceModel d = DeviceModel::mi300a();
  // DG kernels sit far left of the ridge: the projection is the bandwidth
  // bound for every relevant degree
  for (unsigned int k = 1; k <= 8; ++k)
  {
    const KernelModel kernel{k, 8};
    const double dofs = d.projected_dofs_per_s(kernel.measured_bytes_per_dof(),
                                               kernel.flops_per_dof());
    EXPECT_DOUBLE_EQ(dofs, d.hbm_bandwidth / kernel.measured_bytes_per_dof());
    EXPECT_LE(dofs * kernel.flops_per_dof(), d.dp_peak_flops);
  }
  // a hypothetical flop-heavy kernel flips to the compute bound
  EXPECT_DOUBLE_EQ(d.projected_dofs_per_s(1., 1e9), d.dp_peak_flops / 1e9);
}

TEST(DeviceModelTest, SpeedupVsHostIsBandwidthRatio)
{
  const DeviceModel d = DeviceModel::mi300a();
  EXPECT_DOUBLE_EQ(d.projected_speedup_vs_host(2.05e11),
                   d.hbm_bandwidth / 2.05e11);
  EXPECT_DOUBLE_EQ(d.projected_speedup_vs_host(0.), 0.);
}

TEST(DeviceModelTest, HostModelPredictionsArePinned)
{
  // the device model must not perturb any host-side prediction: these are
  // the exact pre-DeviceModel numbers of the SuperMUC-NG machine model and
  // the k=3 kernel model, pinned bit-for-bit (EXPECT_DOUBLE_EQ is exact
  // equality); any drift in the host constants fails here before it skews a
  // roofline or a scaling figure
  const MachineModel host = MachineModel::supermuc_ng();
  EXPECT_DOUBLE_EQ(host.memory_bandwidth, 2.05e11);
  EXPECT_DOUBLE_EQ(host.effective_bandwidth(1.), 1.28125e10);
  const KernelModel kernel{3, 8};
  EXPECT_DOUBLE_EQ(kernel.flops_per_dof(), 161.);
  EXPECT_DOUBLE_EQ(kernel.ideal_bytes_per_dof(), 228.5);
  EXPECT_DOUBLE_EQ(kernel.measured_bytes_per_dof(), 285.625);
  EXPECT_DOUBLE_EQ(kernel.arithmetic_intensity_ideal(),
                   0.70459518599562365);
  ScalingModel model;
  EXPECT_DOUBLE_EQ(model.matvec_time(1e8, 3, 1.), 0.14017817121365519);
  EXPECT_DOUBLE_EQ(model.matvec_throughput(1e8, 3, 1.), 713377832.89798462);
}
