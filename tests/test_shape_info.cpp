#include <gtest/gtest.h>

#include <cmath>

#include "fem/shape_info.h"

using namespace dgflow;

class ShapeInfoTest
  : public ::testing::TestWithParam<std::tuple<unsigned int, unsigned int>>
{};

TEST_P(ShapeInfoTest, ValuesArePartitionOfUnity)
{
  const auto [k, nq] = GetParam();
  const ShapeInfo<double> si(k, nq);
  for (unsigned int q = 0; q < si.n_q_1d; ++q)
  {
    double sum = 0;
    for (unsigned int i = 0; i < si.n_dofs_1d; ++i)
      sum += si.values[q * si.n_dofs_1d + i];
    EXPECT_NEAR(sum, 1., 1e-12);
  }
}

TEST_P(ShapeInfoTest, GradientRowsSumToZero)
{
  const auto [k, nq] = GetParam();
  const ShapeInfo<double> si(k, nq);
  for (unsigned int q = 0; q < si.n_q_1d; ++q)
  {
    double sum = 0;
    for (unsigned int i = 0; i < si.n_dofs_1d; ++i)
      sum += si.gradients[q * si.n_dofs_1d + i];
    EXPECT_NEAR(sum, 0., 1e-10);
  }
}

TEST_P(ShapeInfoTest, MassMatrixDiagonalInCollocation)
{
  const auto [k, nq] = GetParam();
  if (nq != k + 1)
    GTEST_SKIP() << "collocation requires nq == k+1";
  const ShapeInfo<double> si(k, nq);
  EXPECT_TRUE(si.collocation);
  for (unsigned int q = 0; q < si.n_q_1d; ++q)
    for (unsigned int i = 0; i < si.n_dofs_1d; ++i)
      EXPECT_DOUBLE_EQ(si.values[q * si.n_dofs_1d + i], q == i ? 1. : 0.);
}

TEST_P(ShapeInfoTest, FaceValuesMatchBasisAtEndpoints)
{
  const auto [k, nq] = GetParam();
  const ShapeInfo<double> si(k, nq);
  const LagrangeBasis basis(si.nodes);
  for (unsigned int s = 0; s < 2; ++s)
    for (unsigned int i = 0; i < si.n_dofs_1d; ++i)
    {
      EXPECT_NEAR(si.face_value[s][i], basis.value(i, double(s)), 1e-12);
      EXPECT_NEAR(si.face_grad[s][i], basis.derivative(i, double(s)), 1e-10);
    }
}

TEST_P(ShapeInfoTest, SubfaceValuesInterpolateLinearExactly)
{
  // interpolating f(x) = x on a subface must give the subface coordinates
  const auto [k, nq] = GetParam();
  const ShapeInfo<double> si(k, nq);
  const unsigned int n = si.n_dofs_1d;
  for (unsigned int s = 0; s < 2; ++s)
    for (unsigned int q = 0; q < si.n_q_1d; ++q)
    {
      double interp = 0, dinterp = 0;
      for (unsigned int i = 0; i < n; ++i)
      {
        interp += si.nodes[i] * si.subface_values[s][q * n + i];
        dinterp += si.nodes[i] * si.subface_gradients[s][q * n + i];
      }
      EXPECT_NEAR(interp, 0.5 * (si.q_points[q] + s), 1e-12);
      EXPECT_NEAR(dinterp, 1., 1e-10);
    }
}

TEST_P(ShapeInfoTest, CollocationDerivativeDifferentiatesQuadInterpolant)
{
  const auto [k, nq] = GetParam();
  const ShapeInfo<double> si(k, nq);
  // grad_colloc applied to samples of x^2 at quad points gives 2x (nq >= 3)
  if (nq < 3)
    GTEST_SKIP();
  for (unsigned int q2 = 0; q2 < nq; ++q2)
  {
    double d = 0;
    for (unsigned int q1 = 0; q1 < nq; ++q1)
      d += si.grad_colloc[q2 * nq + q1] * si.q_points[q1] * si.q_points[q1];
    EXPECT_NEAR(d, 2. * si.q_points[q2], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
  DegreesAndQuadratures, ShapeInfoTest,
  ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                     ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u)));

TEST(ShapeInfoLobatto, NodesIncludeEndpoints)
{
  const ShapeInfo<double> si(3, 4, BasisType::lagrange_gauss_lobatto);
  EXPECT_DOUBLE_EQ(si.nodes.front(), 0.);
  EXPECT_DOUBLE_EQ(si.nodes.back(), 1.);
  EXPECT_FALSE(si.collocation);
}
