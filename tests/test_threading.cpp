// Shared-memory thread-parallel cell loops (ctest label threading; also run
// under DGFLOW_SANITIZE=thread by run_benchmarks.sh): worker-pool basics
// (every chunk runs exactly once, exceptions propagate, nested regions fall
// back to inline-serial), strict parsing of the DGFLOW_THREADS knob, and the
// determinism contract of the threaded loops — vmult, the fused Jacobi-CG
// solve and the fused Chebyshev sweep must be BITWISE identical to the
// single-threaded sweep at any thread count, serially and on four vmpi
// ranks with per-rank thread partitions.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/env.h"
#include "concurrency/thread_pool.h"
#include "mesh/generators.h"
#include "mesh/partition.h"
#include "operators/laplace_operator.h"
#include "solvers/cg.h"
#include "solvers/chebyshev.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

Mesh make_mesh(const unsigned int refinements)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(refinements);
  return mesh;
}

bool bitwise_equal(const Vector<double> &a, const Vector<double> &b)
{
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Sets an environment variable for the lifetime of one scope.
class ScopedEnv
{
public:
  ScopedEnv(const char *name, const char *value) : name_(name)
  {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

private:
  const char *name_;
};

/// Restores the global pool width when a test body returns or throws.
class ScopedPoolWidth
{
public:
  ScopedPoolWidth()
    : saved_(concurrency::ThreadPool::instance().n_threads())
  {
  }
  ~ScopedPoolWidth()
  {
    concurrency::ThreadPool::instance().set_n_threads(saved_);
  }

private:
  unsigned int saved_;
};
} // namespace

// ---------------------------------------------------------------------------
// worker pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, EveryChunkRunsExactlyOnce)
{
  ScopedPoolWidth guard;
  auto &pool = concurrency::ThreadPool::instance();
  for (const unsigned int nt : {1u, 2u, 4u})
  {
    pool.set_n_threads(nt);
    const unsigned int n_chunks = 37;
    std::vector<std::atomic<int>> counts(n_chunks);
    for (auto &c : counts)
      c = 0;
    pool.run_chunks(n_chunks,
                    [&](const unsigned int c) { ++counts[c]; });
    for (unsigned int c = 0; c < n_chunks; ++c)
      EXPECT_EQ(counts[c].load(), 1) << "chunk " << c << " at " << nt
                                     << " threads";
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce)
{
  ScopedPoolWidth guard;
  auto &pool = concurrency::ThreadPool::instance();
  pool.set_n_threads(4);
  // larger than the grain so the range actually splits into several chunks
  const std::size_t n = (std::size_t(1) << 17) + 13;
  std::vector<std::atomic<signed char>> hits(n);
  for (auto &h : hits)
    h = 0;
  pool.parallel_for(n, [&](const std::size_t i0, const std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(int(hits[i].load()), 1) << "index " << i;
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller)
{
  ScopedPoolWidth guard;
  auto &pool = concurrency::ThreadPool::instance();
  pool.set_n_threads(4);
  EXPECT_THROW(pool.run_chunks(16,
                               [&](const unsigned int c) {
                                 if (c == 7)
                                   throw std::runtime_error("chunk 7");
                               }),
               std::runtime_error);
  // the pool stays usable after a failed region
  std::atomic<int> sum{0};
  pool.run_chunks(8, [&](const unsigned int c) { sum += int(c); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPoolTest, NestedRegionsRunInlineSerial)
{
  ScopedPoolWidth guard;
  auto &pool = concurrency::ThreadPool::instance();
  pool.set_n_threads(4);
  std::atomic<int> inner_total{0};
  pool.run_chunks(4, [&](const unsigned int) {
    // a nested region must not deadlock; it degrades to inline execution
    pool.run_chunks(4,
                    [&](const unsigned int c) { inner_total += int(c); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 6);
}

// ---------------------------------------------------------------------------
// satellite: strict parsing of DGFLOW_THREADS (a typo'd knob must fail fast
// naming the variable, not silently fall back to serial execution)
// ---------------------------------------------------------------------------

namespace
{
void expect_threads_env_rejects(const char *value)
{
  ScopedEnv env("DGFLOW_THREADS", value);
  try
  {
    concurrency::configured_threads_from_env();
    FAIL() << "DGFLOW_THREADS='" << value << "' was accepted";
  }
  catch (const EnvVarError &e)
  {
    EXPECT_NE(std::strstr(e.what(), "DGFLOW_THREADS"), nullptr)
      << "message does not name DGFLOW_THREADS: " << e.what();
  }
}
} // namespace

TEST(EnvHardening, MalformedThreadKnobFailsFastNamingTheVariable)
{
  for (const char *value : {"banana", "0", "-2", "2000", "3.5", "4x", ""})
    expect_threads_env_rejects(value);
}

TEST(EnvHardening, WellFormedThreadKnobIsAccepted)
{
  {
    ScopedEnv env("DGFLOW_THREADS", "4");
    EXPECT_EQ(concurrency::configured_threads_from_env(), 4u);
  }
  unsetenv("DGFLOW_THREADS");
  EXPECT_EQ(concurrency::configured_threads_from_env(), 1u);
}

// ---------------------------------------------------------------------------
// determinism contract: threaded loops are bitwise identical to serial
// ---------------------------------------------------------------------------

namespace
{
struct ThreadedRun
{
  Vector<double> vmult_dst;
  Vector<double> cg_x;
  Vector<double> cheb_x;
};

/// Builds the operator with an nt-chunk thread partition on an nt-wide pool
/// and runs vmult, a fused Jacobi-CG solve and a fused Chebyshev sweep.
ThreadedRun run_threaded(const Mesh &mesh, const unsigned int degree,
                         const unsigned int nt)
{
  concurrency::ThreadPool::instance().set_n_threads(nt);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.n_threads = nt;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());

  ThreadedRun run;
  Vector<double> src(laplace.n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::sin(0.37 * double(i)) + 0.1;
  laplace.vmult(run.vmult_dst, src);

  Vector<double> diag;
  laplace.compute_diagonal(diag);
  PreconditionJacobi<double> jacobi;
  jacobi.reinit(diag);
  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 200;
  control.fuse_loops = true;
  run.cg_x.reinit(laplace.n_dofs());
  const auto stats = solve_cg(laplace, run.cg_x, src, jacobi, control);
  EXPECT_TRUE(stats.converged);

  ChebyshevSmoother<LaplaceOperator<double>, Vector<double>> smoother;
  ChebyshevData cdata;
  cdata.degree = 4;
  cdata.fuse_loops = true;
  smoother.reinit(laplace, diag, cdata);
  run.cheb_x.reinit(laplace.n_dofs());
  smoother.smooth(run.cheb_x, src, /*zero_initial_guess=*/true);
  smoother.smooth(run.cheb_x, src, /*zero_initial_guess=*/false);
  return run;
}
} // namespace

TEST(ThreadDeterminismTest, VmultFusedCGAndChebyshevAreBitwiseIdentical)
{
  ScopedPoolWidth guard;
  const Mesh mesh = make_mesh(2);
  const unsigned int degree = 2;
  const ThreadedRun ref = run_threaded(mesh, degree, 1);
  for (const unsigned int nt : {2u, 4u})
  {
    const ThreadedRun run = run_threaded(mesh, degree, nt);
    EXPECT_TRUE(bitwise_equal(run.vmult_dst, ref.vmult_dst))
      << "vmult differs at " << nt << " threads";
    EXPECT_TRUE(bitwise_equal(run.cg_x, ref.cg_x))
      << "fused CG differs at " << nt << " threads";
    EXPECT_TRUE(bitwise_equal(run.cheb_x, ref.cheb_x))
      << "fused Chebyshev differs at " << nt << " threads";
  }
}

TEST(ThreadDeterminismTest, ChunkedDotIsIndependentOfThreadCount)
{
  ScopedPoolWidth guard;
  auto &pool = concurrency::ThreadPool::instance();
  // large enough to span many 4096-scalar blocks and all 64 outer chunks
  Vector<double> a(300000 + 7), b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
  {
    a[i] = std::sin(0.1 * double(i));
    b[i] = std::cos(0.01 * double(i)) + 1e-3;
  }
  pool.set_n_threads(1);
  const double ref = a.dot(b);
  for (const unsigned int nt : {2u, 3u, 4u, 8u})
  {
    pool.set_n_threads(nt);
    const double d = a.dot(b);
    EXPECT_EQ(std::memcmp(&d, &ref, sizeof(double)), 0)
      << "dot differs at " << nt << " threads";
  }
}

// ---------------------------------------------------------------------------
// threads x ranks: per-rank thread partitions on four vmpi ranks
// ---------------------------------------------------------------------------

namespace
{
struct DistributedRun
{
  Vector<double> vmult_dst;
  Vector<double> cg_x;
};

DistributedRun run_distributed_threaded(const Mesh &mesh,
                                        const unsigned int degree,
                                        const unsigned int nt)
{
  concurrency::ThreadPool::instance().set_n_threads(nt);
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  data.n_threads = nt;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  Vector<double> src(laplace.n_dofs());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::sin(0.37 * double(i)) + 0.1;
  Vector<double> diag;
  laplace.compute_diagonal(diag);

  DistributedRun run;
  run.vmult_dst.reinit(laplace.n_dofs());
  run.cg_x.reinit(laplace.n_dofs());
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), yd;
    xd.copy_owned_from(src);
    laplace.vmult(yd, xd);
    for (std::size_t i = 0; i < yd.size(); ++i)
      run.vmult_dst[yd.first_local_index() + i] = yd.data()[i];

    vmpi::DistributedVector<double> bd, ddiag, sol;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(src);
    ddiag.reinit(part, comm, dofs_per_cell);
    ddiag.copy_owned_from(diag);
    PreconditionJacobi<double> jd;
    jd.reinit(ddiag);
    SolverControl control;
    control.rel_tol = 1e-10;
    control.max_iterations = 200;
    control.fuse_loops = true;
    sol.reinit(part, comm, dofs_per_cell);
    const auto stats = solve_cg(laplace, sol, bd, jd, control);
    EXPECT_TRUE(stats.converged);
    for (std::size_t i = 0; i < sol.size(); ++i)
      run.cg_x[sol.first_local_index() + i] = sol.data()[i];
  });
  return run;
}
} // namespace

TEST(ThreadDeterminismTest, FourRanksTimesThreadsAreBitwiseIdentical)
{
  ScopedPoolWidth guard;
  const Mesh mesh = make_mesh(2);
  const unsigned int degree = 1;
  const DistributedRun ref = run_distributed_threaded(mesh, degree, 1);
  for (const unsigned int nt : {2u, 4u})
  {
    const DistributedRun run = run_distributed_threaded(mesh, degree, nt);
    EXPECT_TRUE(bitwise_equal(run.vmult_dst, ref.vmult_dst))
      << "distributed vmult differs at " << nt << " threads per rank";
    EXPECT_TRUE(bitwise_equal(run.cg_x, ref.cg_x))
      << "distributed fused CG differs at " << nt << " threads per rank";
  }
}
