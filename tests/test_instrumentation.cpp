#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "instrumentation/profiler.h"
#include "vmpi/communicator.h"

using namespace dgflow;

namespace
{
/// Enables + clears the profiler for one test and disables it again on exit,
/// so tests cannot leak state into each other through the singleton.
struct ProfilerSession
{
  ProfilerSession()
  {
    prof::Profiler::instance().enable(true);
    prof::Profiler::instance().reset();
  }
  ~ProfilerSession()
  {
    prof::Profiler::instance().reset();
    prof::Profiler::instance().enable(false);
  }
};

void busy_wait_us(const unsigned int us)
{
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::microseconds(us))
    ;
}
} // namespace

TEST(Instrumentation, ScopeHierarchyAggregates)
{
  ProfilerSession session;

  for (int rep = 0; rep < 3; ++rep)
  {
    prof::Scope outer("outer");
    busy_wait_us(50);
    {
      prof::Scope mid("mid");
      busy_wait_us(50);
      prof::Scope inner("inner");
      busy_wait_us(50);
    }
    {
      prof::Scope mid("mid"); // same name nests into the same node
      busy_wait_us(50);
    }
  }

  const prof::ProfileReport report = prof::Profiler::instance().report();
  ASSERT_EQ(report.timers.size(), 1u);
  EXPECT_EQ(report.depth(), 3u);

  const auto *outer = report.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3ul);
  EXPECT_GT(outer->total, 0.);
  EXPECT_LE(outer->min, outer->max);
  EXPECT_GE(outer->total, outer->max);

  const auto *mid = report.find("outer/mid");
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->count, 6ul); // two mid scopes per repetition
  EXPECT_LT(mid->total, outer->total);

  const auto *inner = report.find("outer/mid/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3ul);
  EXPECT_LT(inner->total, mid->total);

  // self time excludes children
  EXPECT_NEAR(mid->self(), mid->total - inner->total, 1e-12);
  EXPECT_EQ(report.find("outer/inner"), nullptr);
  EXPECT_EQ(report.find("nonexistent"), nullptr);
}

TEST(Instrumentation, ScopesMergeAcrossThreads)
{
  ProfilerSession session;

  auto work = [] {
    prof::Scope a("shared");
    busy_wait_us(20);
    prof::Scope b("leaf");
    busy_wait_us(20);
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  work(); // and once on this thread

  const prof::ProfileReport report = prof::Profiler::instance().report();
  const auto *shared = report.find("shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->count, 3ul);
  const auto *leaf = report.find("shared/leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 3ul);
}

TEST(Instrumentation, CountersRespectEnableAndReset)
{
  auto &profiler = prof::Profiler::instance();
  auto &c = profiler.counter("test_counter");

  profiler.enable(false);
  c.reset();
  c.add(5); // dropped: profiling disabled
  EXPECT_EQ(c.value(), 0ll);

  profiler.enable(true);
  c.add(5);
  c.add(-2);
  EXPECT_EQ(c.value(), 3ll);

  // the same name resolves to the same counter
  EXPECT_EQ(&profiler.counter("test_counter"), &c);
  EXPECT_EQ(profiler.report().counters.at("test_counter"), 3ll);

  profiler.reset(); // zeroes but keeps the handle valid
  EXPECT_EQ(c.value(), 0ll);
  c.add(7);
  EXPECT_EQ(profiler.report().counters.at("test_counter"), 7ll);

  profiler.reset();
  profiler.enable(false);
}

TEST(Instrumentation, DisabledScopesRecordNothing)
{
  auto &profiler = prof::Profiler::instance();
  profiler.enable(false);
  profiler.reset();
  {
    prof::Scope s("invisible");
    busy_wait_us(10);
  }
  profiler.enable(true);
  const prof::ProfileReport report = profiler.report();
  profiler.enable(false);
  EXPECT_EQ(report.find("invisible"), nullptr);
}

TEST(Instrumentation, JsonRoundTrip)
{
  ProfilerSession session;

  {
    prof::Scope a("alpha");
    busy_wait_us(30);
    {
      prof::Scope b("beta");
      busy_wait_us(30);
    }
    {
      prof::Scope c("gamma");
      busy_wait_us(30);
    }
  }
  {
    prof::Scope d("delta");
    busy_wait_us(30);
  }
  prof::counter("cg_iterations").add(42);
  prof::counter("mf_dofs").add(1000000);
  prof::Profiler::instance().add_vmpi_run(4, 12, 34567, 3, 9);

  const prof::ProfileReport report = prof::Profiler::instance().report();
  const prof::ProfileReport parsed =
    prof::ProfileReport::parse_json(report.json());

  ASSERT_EQ(parsed.timers.size(), report.timers.size());
  for (const char *path : {"alpha", "alpha/beta", "alpha/gamma", "delta"})
  {
    const auto *orig = report.find(path);
    const auto *back = parsed.find(path);
    ASSERT_NE(orig, nullptr) << path;
    ASSERT_NE(back, nullptr) << path;
    EXPECT_EQ(back->count, orig->count) << path;
    EXPECT_DOUBLE_EQ(back->total, orig->total) << path;
    EXPECT_DOUBLE_EQ(back->min, orig->min) << path;
    EXPECT_DOUBLE_EQ(back->max, orig->max) << path;
  }
  EXPECT_EQ(parsed.counters, report.counters);
  EXPECT_EQ(parsed.vmpi.runs, 1ull);
  EXPECT_EQ(parsed.vmpi.ranks, 4ull);
  EXPECT_EQ(parsed.vmpi.messages, 12ull);
  EXPECT_EQ(parsed.vmpi.bytes, 34567ull);
  EXPECT_EQ(parsed.vmpi.barriers, 3ull);
  EXPECT_EQ(parsed.vmpi.allreduces, 9ull);

  // a second decode-encode cycle is the identity on the text
  EXPECT_EQ(parsed.json(), report.json());
}

TEST(Instrumentation, ParseJsonHandlesEmptyReport)
{
  const prof::ProfileReport empty;
  const prof::ProfileReport parsed =
    prof::ProfileReport::parse_json(empty.json());
  EXPECT_TRUE(parsed.timers.empty());
  EXPECT_TRUE(parsed.counters.empty());
  EXPECT_EQ(parsed.vmpi.runs, 0ull);
  EXPECT_EQ(parsed.depth(), 0u);
}

TEST(Instrumentation, VmpiTrafficIsAggregatedAtJoin)
{
  ProfilerSession session;

  constexpr int n_ranks = 3;
  static constexpr std::size_t payload_doubles = 16;
  vmpi::run(n_ranks, [](vmpi::Communicator &comm) {
    // ring exchange: every rank sends one message of known size
    std::vector<double> data(payload_doubles, comm.rank());
    comm.send_vector((comm.rank() + 1) % comm.size(), 0, data);
    const auto received = comm.recv_vector<double>(
      (comm.rank() + comm.size() - 1) % comm.size(), 0, payload_doubles);
    EXPECT_EQ(received.size(), payload_doubles);
    comm.barrier();
    comm.allreduce(1., vmpi::Communicator::Op::sum);
    comm.allreduce(double(comm.rank()), vmpi::Communicator::Op::max);
  });

  const prof::ProfileReport report = prof::Profiler::instance().report();
  EXPECT_EQ(report.vmpi.runs, 1ull);
  EXPECT_EQ(report.vmpi.ranks, 3ull);
  EXPECT_EQ(report.vmpi.messages, 3ull); // one send per rank
  EXPECT_EQ(report.vmpi.bytes, 3ull * payload_doubles * sizeof(double));
  EXPECT_EQ(report.vmpi.barriers, 3ull);   // one barrier x three ranks
  EXPECT_EQ(report.vmpi.allreduces, 6ull); // two allreduces x three ranks

  // a second run accumulates on top
  vmpi::run(2, [](vmpi::Communicator &comm) { comm.barrier(); });
  const prof::ProfileReport second = prof::Profiler::instance().report();
  EXPECT_EQ(second.vmpi.runs, 2ull);
  EXPECT_EQ(second.vmpi.ranks, 5ull);
  EXPECT_EQ(second.vmpi.barriers, 5ull);
}

TEST(Instrumentation, VmpiTrafficIgnoredWhenDisabled)
{
  auto &profiler = prof::Profiler::instance();
  profiler.enable(false);
  profiler.reset();
  vmpi::run(2, [](vmpi::Communicator &comm) { comm.barrier(); });
  profiler.enable(true);
  const prof::ProfileReport report = profiler.report();
  profiler.enable(false);
  EXPECT_EQ(report.vmpi.runs, 0ull);
  EXPECT_EQ(report.vmpi.barriers, 0ull);
}

#ifdef DGFLOW_PROFILE
TEST(Instrumentation, MacrosRecordScopesAndCounters)
{
  ProfilerSession session;
  {
    DGFLOW_PROF_SCOPE("macro_outer");
    busy_wait_us(20);
    DGFLOW_PROF_SCOPE("macro_inner");
    DGFLOW_PROF_COUNT("macro_counter", 4);
    DGFLOW_PROF_COUNT("macro_counter", 6);
    busy_wait_us(20);
  }
  const prof::ProfileReport report = prof::Profiler::instance().report();
  const auto *inner = report.find("macro_outer/macro_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 1ul);
  EXPECT_EQ(report.counters.at("macro_counter"), 10ll);
}
#endif
