#include <gtest/gtest.h>

#include <cmath>

#include "incns/analytic_flows.h"
#include "incns/solver.h"
#include "mesh/generators.h"

using namespace dgflow;

namespace
{
/// Boundary conditions for the Ethier-Steinman flow: analytic velocity
/// Dirichlet on five faces, analytic pressure on x=1.
FlowBoundaryMap ethier_steinman_bc(const EthierSteinman &es)
{
  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [es](const Point &p, double t) { return es.pressure(p, t); };
      // the analytic flow passes in and out of the open face
      b.backflow_stabilization = false;
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [es](const Point &p, double t) { return es.velocity(p, t); };
      b.velocity_dt = [es](const Point &p, double t) {
        return es.velocity_dt(p, t);
      };
    }
    bc[id] = b;
  }
  return bc;
}

INSSolver<double>::Parameters es_parameters(const EthierSteinman &es,
                                            const double dt,
                                            const unsigned int degree = 3)
{
  INSSolver<double>::Parameters prm;
  prm.degree = degree;
  prm.viscosity = es.nu;
  prm.fixed_dt = dt;
  prm.rel_tol_pressure = 1e-8;
  prm.rel_tol_viscous = 1e-8;
  prm.rel_tol_projection = 1e-8;
  prm.velocity_neumann_data = [es](const Point &p, double t) {
    // du/dn on the x=1 face (normal = +x)
    const auto g = es.velocity_gradient(p, t);
    return Tensor1<double>(g[0][0], g[1][0], g[2][0]);
  };
  return prm;
}

void run_es(INSSolver<double> &solver, const Mesh &mesh, const Geometry &geom,
            const EthierSteinman &es, const double dt, const double T,
            const unsigned int degree = 3)
{
  solver.setup(mesh, geom, ethier_steinman_bc(es),
               es_parameters(es, dt, degree));
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });
  while (solver.time() < T - 1e-12)
    solver.advance();
}
} // namespace

TEST(INSSolverES, VelocityStaysCloseToAnalytic)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  const double T = 0.05;
  run_es(solver, mesh, geom, es, 0.0125, T);

  const double err = l2_error_vector(
    solver.matrix_free(), INSSolver<double>::u_space, INSSolver<double>::quad_u,
    solver.velocity(),
    [&](const Point &p) { return es.velocity(p, T); });
  // reference velocity magnitude is O(1); both spatial (k=3, h=1/2) and
  // temporal errors are small
  EXPECT_LT(err, 2e-3) << "ES velocity error: " << err;
}

TEST(INSSolverES, SecondOrderInTime)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  const double T = 0.04;

  // degree 5 keeps the dt-coupled spatial divergence error below the
  // temporal errors being measured
  INSSolver<double> ref, s1, s2;
  run_es(ref, mesh, geom, es, T / 32., T, 5);
  run_es(s1, mesh, geom, es, T / 4., T, 5);
  run_es(s2, mesh, geom, es, T / 8., T, 5);

  Vector<double> d1(ref.velocity().size()), d2(ref.velocity().size());
  d1.equ(1., s1.velocity(), -1., ref.velocity());
  d2.equ(1., s2.velocity(), -1., ref.velocity());
  const double rate = std::log2(double(d1.l2_norm()) / double(d2.l2_norm()));
  EXPECT_GT(rate, 1.5) << "temporal rate: " << rate << " (errors "
                       << double(d1.l2_norm()) << " -> "
                       << double(d2.l2_norm()) << ")";
  EXPECT_LT(rate, 3.0);
}

TEST(INSSolverES, DivergenceIsSmall)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  run_es(solver, mesh, geom, es, 0.01, 0.03);
  // the penalty step keeps the broken divergence small relative to the
  // velocity scale (||u|| ~ 1, ||grad u|| ~ 1)
  EXPECT_LT(solver.divergence_l2(), 5e-3);
}

TEST(INSSolverPoiseuille, ReachesAnalyticSteadyState)
{
  PoiseuilleChannel channel;
  channel.G = 1.;
  channel.nu = 1.;

  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{1, 1, 1}}));
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());

  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 0 || id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [channel, id](const Point &, double) {
        return id == 0 ? channel.G : 0.;
      };
    }
    else if (id == 2 || id == 3)
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet; // no-slip walls
      b.velocity = [](const Point &, double) { return Tensor1<double>(); };
    }
    else
    {
      // z-faces carry the analytic profile (flow is z-independent)
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [channel](const Point &p, double) {
        return channel.velocity(p);
      };
    }
    bc[id] = b;
  }

  INSSolver<double>::Parameters prm;
  prm.degree = 2;
  prm.viscosity = channel.nu;
  prm.cfl = 0.3;
  prm.max_dt = 0.02;
  prm.rel_tol_pressure = 1e-8;
  prm.rel_tol_viscous = 1e-8;
  prm.rel_tol_projection = 1e-8;

  INSSolver<double> solver;
  solver.setup(mesh, geom, bc, prm);
  // start from rest; the flow develops over the diffusive time scale
  solver.set_initial_condition(
    [](const Point &) { return Tensor1<double>(); });
  while (solver.time() < 1.5)
    solver.advance();

  const double flux_out = solver.boundary_flux(1);
  EXPECT_NEAR(flux_out, channel.flux(), 0.02 * channel.flux())
    << "flux " << flux_out << " vs analytic " << channel.flux();

  const double err = l2_error_vector(
    solver.matrix_free(), INSSolver<double>::u_space, INSSolver<double>::quad_u,
    solver.velocity(),
    [&](const Point &p) { return channel.velocity(p); });
  EXPECT_LT(err, 5e-3);
}

TEST(INSSolverMisc, AdaptiveTimeStepRespondsToVelocity)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  auto prm = es_parameters(es, 0.);
  prm.fixed_dt = 0.;
  prm.cfl = 0.2;
  solver.setup(mesh, geom, ethier_steinman_bc(es), prm);
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });
  const auto info1 = solver.advance();
  EXPECT_GT(info1.dt, 0.);
  // the ES field decays; the CFL step should not shrink
  double last_dt = info1.dt;
  for (int i = 0; i < 5; ++i)
  {
    const auto info = solver.advance();
    EXPECT_GE(info.dt, 0.9 * last_dt);
    last_dt = info.dt;
  }
}

TEST(INSSolverMisc, ProfilerAndStepInfoAreRecorded)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  solver.setup(mesh, geom, ethier_steinman_bc(es), es_parameters(es, 5e-3));
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); });

  auto &profiler = prof::Profiler::instance();
  profiler.enable(true);
  profiler.reset();
  const auto info = solver.advance();
  const prof::ProfileReport report = profiler.report();
  profiler.enable(false);

  EXPECT_GT(info.wall_time, 0.);
  EXPECT_TRUE(info.pressure.converged);
  EXPECT_TRUE(info.viscous.converged);
  EXPECT_TRUE(info.penalty.converged);
  EXPECT_GT(info.pressure.iterations, 0u);
  EXPECT_GT(info.viscous.iterations, 0u);
  EXPECT_GT(info.penalty.iterations, 0u);
  EXPECT_GT(info.pressure.seconds, 0.);

#ifdef DGFLOW_PROFILE
  // every substep shows up once under the step scope
  for (const char *section :
       {"ins_step/convective_step", "ins_step/pressure", "ins_step/projection",
        "ins_step/viscous", "ins_step/penalty"})
  {
    const auto *entry = report.find(section);
    ASSERT_NE(entry, nullptr) << section;
    EXPECT_EQ(entry->count, 1ul) << section;
    EXPECT_GT(entry->total, 0.) << section;
  }
  // the recorded iteration counters match the SolveStats the solver returned
  EXPECT_EQ(report.counters.at("ins_pressure_iterations"),
            static_cast<long long>(info.pressure.iterations));
  EXPECT_EQ(report.counters.at("ins_viscous_iterations"),
            static_cast<long long>(info.viscous.iterations));
  EXPECT_EQ(report.counters.at("ins_penalty_iterations"),
            static_cast<long long>(info.penalty.iterations));
  EXPECT_EQ(report.counters.at("ins_steps"), 1ll);
  // ins_step / pressure / cg / mg_vcycle / levelN / smoother: the hierarchy
  // resolves the full solver stack
  EXPECT_GE(report.depth(), 4u);
  EXPECT_NE(report.find("ins_step/pressure/cg"), nullptr);
#endif
}

TEST(INSSolverMisc, KineticEnergyDecaysForViscousFlow)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  INSSolver<double> solver;
  run_es(solver, mesh, geom, es, 5e-3, 0.);
  const double e0 = kinetic_energy(solver.matrix_free(), 0, 0,
                                   solver.velocity());
  for (int i = 0; i < 10; ++i)
    solver.advance();
  const double e1 = kinetic_energy(solver.matrix_free(), 0, 0,
                                   solver.velocity());
  // ES decays like exp(-2 nu d^2 t): after t = 0.05, factor ~0.78
  EXPECT_LT(e1, e0);
  EXPECT_NEAR(e1 / e0, std::exp(-2. * es.nu * es.d * es.d * 0.05), 0.05);
}
