#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "incns/analytic_flows.h"
#include "incns/solver.h"
#include "lung/lung_application.h"
#include "mesh/generators.h"
#include "resilience/checkpoint.h"

using namespace dgflow;

namespace
{
std::string temp_path(const std::string &name)
{
  return ::testing::TempDir() + "dgflow_" + name;
}

std::vector<char> read_file(const std::string &path)
{
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string &path, const std::vector<char> &bytes)
{
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

FlowBoundaryMap ethier_steinman_bc(const EthierSteinman &es)
{
  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [es](const Point &p, double t) { return es.pressure(p, t); };
      b.backflow_stabilization = false;
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [es](const Point &p, double t) { return es.velocity(p, t); };
      b.velocity_dt = [es](const Point &p, double t) {
        return es.velocity_dt(p, t);
      };
    }
    bc[id] = b;
  }
  return bc;
}

INSSolver<double>::Parameters es_parameters(const EthierSteinman &es)
{
  INSSolver<double>::Parameters prm;
  prm.degree = 3;
  prm.viscosity = es.nu;
  prm.cfl = 0.2; // adaptive dt: the restart must reproduce the dt sequence
  prm.rel_tol_pressure = 1e-8;
  prm.rel_tol_viscous = 1e-8;
  prm.rel_tol_projection = 1e-8;
  return prm;
}

void setup_es(INSSolver<double> &solver, const Mesh &mesh,
              const Geometry &geom, const EthierSteinman &es)
{
  solver.setup(mesh, geom, ethier_steinman_bc(es), es_parameters(es));
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });
}
} // namespace

TEST(CheckpointFileTest, RoundTripPreservesRecordsBitwise)
{
  const std::string path = temp_path("roundtrip.ckpt");
  Vector<double> vd(5);
  for (std::size_t i = 0; i < vd.size(); ++i)
    vd[i] = std::sin(3.7 * double(i)) * 1e-7;
  Vector<float> vf(3);
  for (std::size_t i = 0; i < vf.size(); ++i)
    vf[i] = float(i) + 0.25f;

  {
    resilience::CheckpointWriter writer(path);
    writer.write_u64(42);
    writer.write_double(0.1); // not exactly representable: bitwise matters
    writer.write_vector(vd);
    writer.write_vector(vf);
    writer.close();
  }

  resilience::CheckpointReader reader(path);
  EXPECT_EQ(reader.read_u64(), 42ull);
  EXPECT_EQ(reader.read_double(), 0.1);
  Vector<double> rd;
  Vector<float> rf;
  reader.read_vector(rd);
  reader.read_vector(rf);
  ASSERT_EQ(rd.size(), vd.size());
  for (std::size_t i = 0; i < vd.size(); ++i)
    EXPECT_EQ(rd[i], vd[i]);
  ASSERT_EQ(rf.size(), vf.size());
  for (std::size_t i = 0; i < vf.size(); ++i)
    EXPECT_EQ(rf[i], vf[i]);
  EXPECT_TRUE(reader.exhausted());
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, TypeAndPrecisionMismatchesAreStructuredErrors)
{
  const std::string path = temp_path("mismatch.ckpt");
  {
    resilience::CheckpointWriter writer(path);
    writer.write_u64(1);
    Vector<double> v(2);
    writer.write_vector(v);
    writer.close();
  }
  {
    // reading a scalar as the wrong record type
    resilience::CheckpointReader reader(path);
    EXPECT_THROW(reader.read_double(), resilience::CheckpointError);
  }
  {
    // reading a double vector as float
    resilience::CheckpointReader reader(path);
    reader.read_u64();
    Vector<float> v;
    EXPECT_THROW(reader.read_vector(v), resilience::CheckpointError);
  }
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, CorruptionTruncationAndBadHeaderAreRejected)
{
  const std::string path = temp_path("corrupt.ckpt");
  {
    resilience::CheckpointWriter writer(path);
    writer.write_double(1.5);
    writer.write_u64(7);
    writer.close();
  }
  const std::vector<char> good = read_file(path);
  ASSERT_GT(good.size(), 40u);

  // flip one payload byte: checksum must catch it
  {
    std::vector<char> bad = good;
    bad[bad.size() - 3] = static_cast<char>(bad[bad.size() - 3] ^ 0x10);
    write_file(path, bad);
    try
    {
      resilience::CheckpointReader reader(path);
      FAIL() << "corrupted checkpoint was accepted";
    }
    catch (const resilience::CheckpointError &e)
    {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    }
  }

  // truncated payload
  {
    std::vector<char> bad(good.begin(), good.end() - 4);
    write_file(path, bad);
    EXPECT_THROW(resilience::CheckpointReader reader(path),
                 resilience::CheckpointError);
  }

  // bad magic
  {
    std::vector<char> bad = good;
    bad[0] = 'X';
    write_file(path, bad);
    EXPECT_THROW(resilience::CheckpointReader reader(path),
                 resilience::CheckpointError);
  }

  // missing file
  std::remove(path.c_str());
  EXPECT_THROW(resilience::CheckpointReader reader(path),
               resilience::CheckpointError);
}

TEST(CheckpointFileTest, UnsupportedVersionIsRejected)
{
  const std::string path = temp_path("version.ckpt");
  {
    resilience::CheckpointWriter writer(path);
    writer.write_u64(1);
    writer.close();
  }
  std::vector<char> bytes = read_file(path);
  bytes[8] = 99; // version field follows the 8-byte magic
  write_file(path, bytes);
  try
  {
    resilience::CheckpointReader reader(path);
    FAIL() << "future-version checkpoint was accepted";
  }
  catch (const resilience::CheckpointError &e)
  {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
      << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointINSTest, RestartResumesBitForBit)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  const std::string path = temp_path("ins.ckpt");

  // reference run: 3 steps, checkpoint, 3 more steps
  INSSolver<double> reference;
  setup_es(reference, mesh, geom, es);
  for (int i = 0; i < 3; ++i)
    reference.advance();
  reference.save_checkpoint(path);
  for (int i = 0; i < 3; ++i)
    reference.advance();

  // restarted run: fresh solver, same setup, resume from the checkpoint
  INSSolver<double> restarted;
  setup_es(restarted, mesh, geom, es);
  restarted.load_checkpoint(path);
  std::remove(path.c_str());
  for (int i = 0; i < 3; ++i)
    restarted.advance();

  // exact resume: the adaptive dt sequence and all fields are identical
  EXPECT_EQ(restarted.time(), reference.time());
  ASSERT_EQ(restarted.velocity().size(), reference.velocity().size());
  for (std::size_t i = 0; i < reference.velocity().size(); ++i)
    ASSERT_EQ(restarted.velocity()[i], reference.velocity()[i]) << "dof " << i;
  for (std::size_t i = 0; i < reference.pressure().size(); ++i)
    ASSERT_EQ(restarted.pressure()[i], reference.pressure()[i]) << "dof " << i;
}

TEST(CheckpointINSTest, MismatchedDiscretizationIsRejected)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  const std::string path = temp_path("ins_mismatch.ckpt");

  INSSolver<double> coarse;
  setup_es(coarse, mesh, geom, es);
  coarse.advance();
  coarse.save_checkpoint(path);

  Mesh fine(unit_cube());
  fine.refine_uniform(1);
  TrilinearGeometry fine_geom(fine.coarse());
  INSSolver<double> other;
  setup_es(other, fine, fine_geom, es);
  EXPECT_THROW(other.load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointLungTest, ApplicationRestartResumesBitForBit)
{
  LungApplicationParameters prm;
  prm.generations = 1;
  const std::string path = temp_path("lung.ckpt");

  LungApplication reference(prm);
  for (int i = 0; i < 10; ++i)
    reference.advance();
  reference.save_checkpoint(path);
  const double dp_at_save = reference.ventilation().current_dp();
  for (int i = 0; i < 5; ++i)
    reference.advance();

  LungApplication restarted(prm);
  restarted.load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_EQ(restarted.ventilation().current_dp(), dp_at_save);
  for (int i = 0; i < 5; ++i)
    restarted.advance();

  EXPECT_EQ(restarted.solver().time(), reference.solver().time());
  const auto &u_ref = reference.solver().velocity();
  const auto &u_new = restarted.solver().velocity();
  ASSERT_EQ(u_new.size(), u_ref.size());
  for (std::size_t i = 0; i < u_ref.size(); ++i)
    ASSERT_EQ(u_new[i], u_ref[i]) << "dof " << i;
  for (unsigned int o = 0; o < reference.ventilation().n_outlets(); ++o)
    EXPECT_EQ(restarted.ventilation().outlet_pressure(o),
              reference.ventilation().outlet_pressure(o));
}
