#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fem/tensor_kernels.h"
#include "matrixfree/fe_evaluation.h"
#include "mesh/generators.h"
#include "simd/vectorized_array.h"

using namespace dgflow;

namespace
{
std::mt19937 rng(42);

std::vector<double> random_vector(const std::size_t n)
{
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<double> v(n);
  for (auto &x : v)
    x = dist(rng);
  return v;
}

/// Reference implementation: dense application of M along one direction.
std::vector<double> reference_apply(const std::vector<double> &M,
                                    const unsigned int m, const unsigned int n,
                                    const std::vector<double> &in,
                                    const unsigned int dir,
                                    std::array<unsigned int, 3> e,
                                    const bool transpose)
{
  const unsigned int n_in = transpose ? m : n;
  const unsigned int n_out = transpose ? n : m;
  EXPECT_EQ(e[dir], n_in);
  std::array<unsigned int, 3> eo = e;
  eo[dir] = n_out;
  std::vector<double> out(eo[0] * eo[1] * eo[2], 0.);
  for (unsigned int i2 = 0; i2 < eo[2]; ++i2)
    for (unsigned int i1 = 0; i1 < eo[1]; ++i1)
      for (unsigned int i0 = 0; i0 < eo[0]; ++i0)
      {
        std::array<unsigned int, 3> oi{{i0, i1, i2}};
        double sum = 0;
        for (unsigned int c = 0; c < n_in; ++c)
        {
          std::array<unsigned int, 3> ii = oi;
          ii[dir] = c;
          const double mv =
            transpose ? M[c * n + oi[dir]] : M[oi[dir] * n + c];
          sum += mv * in[(ii[2] * e[1] + ii[1]) * e[0] + ii[0]];
        }
        out[(i2 * eo[1] + i1) * eo[0] + i0] = sum;
      }
  return out;
}
} // namespace

struct KernelCase
{
  unsigned int m, n, dir;
};

class ApplyMatrix1D : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(ApplyMatrix1D, MatchesDenseReference)
{
  const auto [m, n, dir] = GetParam();
  std::array<unsigned int, 3> e{{4, 3, 5}};
  e[dir] = n;
  const auto M = random_vector(m * n);
  const auto in = random_vector(e[0] * e[1] * e[2]);
  const auto ref = reference_apply(M, m, n, in, dir, e, false);

  std::array<unsigned int, 3> eo = e;
  eo[dir] = m;
  std::vector<double> out(eo[0] * eo[1] * eo[2], 0.);
  apply_matrix_1d<false, false>(M.data(), m, n, in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], ref[i], 1e-13);

  // additive application accumulates
  apply_matrix_1d<false, true>(M.data(), m, n, in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], 2. * ref[i], 1e-13);
}

TEST_P(ApplyMatrix1D, TransposeMatchesDenseReference)
{
  const auto [m, n, dir] = GetParam();
  std::array<unsigned int, 3> e{{4, 3, 5}};
  e[dir] = m; // transpose contracts over rows
  const auto M = random_vector(m * n);
  const auto in = random_vector(e[0] * e[1] * e[2]);
  const auto ref = reference_apply(M, m, n, in, dir, e, true);

  std::array<unsigned int, 3> eo = e;
  eo[dir] = n;
  std::vector<double> out(eo[0] * eo[1] * eo[2], 0.);
  apply_matrix_1d<true, false>(M.data(), m, n, in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], ref[i], 1e-13);
}

TEST_P(ApplyMatrix1D, AdjointIdentity)
{
  // <M x, y> == <x, M^T y> for the same direction
  const auto [m, n, dir] = GetParam();
  std::array<unsigned int, 3> ex{{4, 3, 5}}, ey{{4, 3, 5}};
  ex[dir] = n;
  ey[dir] = m;
  const auto M = random_vector(m * n);
  const auto x = random_vector(ex[0] * ex[1] * ex[2]);
  const auto y = random_vector(ey[0] * ey[1] * ey[2]);

  std::vector<double> Mx(y.size());
  apply_matrix_1d<false, false>(M.data(), m, n, x.data(), Mx.data(), dir, ex);
  std::vector<double> Mty(x.size());
  apply_matrix_1d<true, false>(M.data(), m, n, y.data(), Mty.data(), dir, ey);

  double a = 0, b = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    a += Mx[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    b += x[i] * Mty[i];
  EXPECT_NEAR(a, b, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
  Shapes, ApplyMatrix1D,
  ::testing::Values(KernelCase{4, 4, 0}, KernelCase{4, 4, 1},
                    KernelCase{4, 4, 2}, KernelCase{6, 4, 0},
                    KernelCase{6, 4, 1}, KernelCase{6, 4, 2},
                    KernelCase{2, 5, 0}, KernelCase{2, 5, 2},
                    KernelCase{1, 3, 1}, KernelCase{8, 8, 1}));

TEST(FaceContraction, InterpolatesConstantExactly)
{
  // contract with a vector summing to 1 (partition of unity at a face point)
  const unsigned int n = 4;
  std::array<unsigned int, 3> e{{n, n, n}};
  std::vector<double> v{0.1, 0.4, 0.3, 0.2};
  std::vector<double> in(n * n * n, 2.5);
  std::vector<double> out(n * n);
  for (unsigned int dir = 0; dir < 3; ++dir)
  {
    contract_to_face<false>(v.data(), n, in.data(), out.data(), dir, e);
    for (const double x : out)
      EXPECT_NEAR(x, 2.5, 1e-14);
  }
}

TEST(FaceContraction, ExpandIsAdjointOfContract)
{
  const unsigned int n = 5;
  std::array<unsigned int, 3> e{{n, n, n}};
  const auto v = random_vector(n);
  const auto x = random_vector(n * n * n);
  const auto y = random_vector(n * n);
  for (unsigned int dir = 0; dir < 3; ++dir)
  {
    std::vector<double> face(n * n);
    contract_to_face<false>(v.data(), n, x.data(), face.data(), dir, e);
    std::vector<double> cell(n * n * n, 0.);
    expand_from_face<false>(v.data(), n, y.data(), cell.data(), dir, e);
    double a = 0, b = 0;
    for (unsigned int i = 0; i < face.size(); ++i)
      a += face[i] * y[i];
    for (unsigned int i = 0; i < cell.size(); ++i)
      b += cell[i] * x[i];
    EXPECT_NEAR(a, b, 1e-12);
  }
}

TEST(FaceContraction, WorksWithVectorizedArray)
{
  using VA = VectorizedArray<double>;
  const unsigned int n = 3;
  std::array<unsigned int, 3> e{{n, n, n}};
  const auto v = random_vector(n);
  std::vector<VA> in(n * n * n);
  for (unsigned int i = 0; i < in.size(); ++i)
    for (unsigned int l = 0; l < VA::width; ++l)
      in[i][l] = double(i) + 0.01 * l;
  std::vector<VA> out(n * n);
  contract_to_face<false>(v.data(), n, in.data(), out.data(), 1, e);

  // compare against per-lane scalar computation
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    std::vector<double> in_l(in.size()), out_l(out.size());
    for (unsigned int i = 0; i < in.size(); ++i)
      in_l[i] = in[i][l];
    contract_to_face<false>(v.data(), n, in_l.data(), out_l.data(), 1, e);
    for (unsigned int i = 0; i < out.size(); ++i)
      EXPECT_NEAR(out[i][l], out_l[i], 1e-14);
  }
}

// ---------------------------------------------------------------------------
// even-odd decomposition
// ---------------------------------------------------------------------------

namespace
{
/// builds a random matrix with the (anti)symmetry of symmetric point sets
std::vector<double> random_symmetric_matrix(const unsigned int m,
                                            const unsigned int n,
                                            const int sign)
{
  std::vector<double> M(m * n);
  std::uniform_real_distribution<double> dist(-1., 1.);
  for (unsigned int r = 0; r < (m + 1) / 2; ++r)
    for (unsigned int c = 0; c < n; ++c)
    {
      const double v = dist(rng);
      M[r * n + c] = v;
      M[(m - 1 - r) * n + (n - 1 - c)] = sign * v;
    }
  // the center entry of an odd anti-symmetric matrix must vanish
  if (sign < 0 && m % 2 == 1 && n % 2 == 1)
    M[(m / 2) * n + n / 2] = 0.;
  return M;
}
} // namespace

struct EoCase
{
  unsigned int m, n, dir;
  int sign;
};

class EvenOddKernel : public ::testing::TestWithParam<EoCase>
{};

TEST_P(EvenOddKernel, MatchesGenericKernel)
{
  const auto [m, n, dir, sign] = GetParam();
  const auto M = random_symmetric_matrix(m, n, sign);
  const unsigned int mh = (m + 1) / 2, nh = (n + 1) / 2;
  std::vector<double> Me(mh * nh), Mo(mh * nh);
  build_even_odd_matrices(M.data(), m, n, Me.data(), Mo.data());

  std::array<unsigned int, 3> e{{3, 4, 5}};
  e[dir] = n;
  const auto in = random_vector(e[0] * e[1] * e[2]);
  std::array<unsigned int, 3> eo_ext = e;
  eo_ext[dir] = m;
  std::vector<double> ref(eo_ext[0] * eo_ext[1] * eo_ext[2]);
  apply_matrix_1d<false, false>(M.data(), m, n, in.data(), ref.data(), dir, e);
  std::vector<double> out(ref.size(), -7.);
  apply_matrix_1d_evenodd<false, false>(Me.data(), Mo.data(), m, n, sign,
                                        in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(out[i], ref[i], 1e-13) << "fwd entry " << i;

  // additive variant
  apply_matrix_1d_evenodd<false, true>(Me.data(), Mo.data(), m, n, sign,
                                       in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(out[i], 2. * ref[i], 1e-13);

  // transpose
  const auto in_t = random_vector(eo_ext[0] * eo_ext[1] * eo_ext[2]);
  std::vector<double> ref_t(e[0] * e[1] * e[2]);
  apply_matrix_1d<true, false>(M.data(), m, n, in_t.data(), ref_t.data(), dir,
                               eo_ext);
  std::vector<double> out_t(ref_t.size(), -3.);
  apply_matrix_1d_evenodd<true, false>(Me.data(), Mo.data(), m, n, sign,
                                       in_t.data(), out_t.data(), dir,
                                       eo_ext);
  for (std::size_t i = 0; i < ref_t.size(); ++i)
    ASSERT_NEAR(out_t[i], ref_t[i], 1e-13) << "transpose entry " << i;
}

INSTANTIATE_TEST_SUITE_P(
  Shapes, EvenOddKernel,
  ::testing::Values(EoCase{4, 4, 0, 1}, EoCase{4, 4, 1, -1},
                    EoCase{5, 5, 2, 1}, EoCase{5, 5, 0, -1},
                    EoCase{6, 4, 1, 1}, EoCase{6, 4, 2, -1},
                    EoCase{5, 4, 0, 1}, EoCase{5, 4, 1, -1},
                    EoCase{3, 3, 2, -1}, EoCase{8, 8, 0, 1}));

TEST(EvenOddFEEvaluation, MatchesGenericPath)
{
  // full operator-level check: evaluate+integrate with and without even-odd
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.05 * p[1], p[1] - 0.04 * p[2], p[2]);
  });
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {3};
  data.n_q_points_1d = {5}; // non-collocated: exercises interpolation too
  mf.reinit(mesh, geom, data);

  Vector<double> src(mf.n_dofs(0, 1)), dst_eo(src.size()), dst_gen(src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::sin(0.01 * double(i));

  for (const bool eo : {true, false})
  {
    FEEvaluation<double, 1> phi(mf, 0, 0, eo);
    Vector<double> &dst = eo ? dst_eo : dst_gen;
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(src);
      phi.evaluate(true, true);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        phi.submit_value(phi.get_value(q), q);
        phi.submit_gradient(phi.get_gradient(q), q);
      }
      phi.integrate(true, true);
      phi.distribute_local_to_global(dst);
    }
  }
  for (std::size_t i = 0; i < src.size(); ++i)
    ASSERT_NEAR(dst_eo[i], dst_gen[i], 1e-12 * (1. + std::abs(dst_gen[i])));
}

// ---------------------------------------------------------------------------
// Specialized (compile-time-extent) kernel dispatch vs the generic
// runtime-extent kernels: every (degree, n_q_1d) pair published through
// DGFLOW_KERNEL_DISPATCH_SIZES must reproduce the generic results to a few
// ULPs (identical operation order; only FMA contraction may differ).
// ---------------------------------------------------------------------------

#include "fem/kernel_dispatch.h"
#include "fem/kernel_dispatch_sizes.h"

namespace
{
using VAd = VectorizedArray<double>;

AlignedVector<VAd> random_batch(const std::size_t n)
{
  std::uniform_real_distribution<double> dist(-1., 1.);
  AlignedVector<VAd> v(n);
  for (std::size_t i = 0; i < n; ++i)
    for (unsigned int l = 0; l < VAd::width; ++l)
      v[i][l] = dist(rng);
  return v;
}

void expect_batches_near(const AlignedVector<VAd> &a,
                         const AlignedVector<VAd> &b, const double tol,
                         const char *what)
{
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (unsigned int l = 0; l < VAd::width; ++l)
      ASSERT_NEAR(a[i][l], b[i][l], tol * (1. + std::abs(b[i][l])))
        << what << " entry " << i << " lane " << l;
}

std::vector<std::pair<unsigned int, unsigned int>> dispatch_sizes()
{
  std::vector<std::pair<unsigned int, unsigned int>> sizes;
#define DGFLOW_COLLECT_SIZE(deg, nq) sizes.emplace_back(deg, nq);
  DGFLOW_KERNEL_DISPATCH_SIZES(DGFLOW_COLLECT_SIZE)
#undef DGFLOW_COLLECT_SIZE
  return sizes;
}
} // namespace

TEST(KernelDispatch, CoversAllListedSizesAndOnlyThose)
{
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    EXPECT_NE(lookup_cell_kernels<double>(deg, nq), nullptr)
      << "degree " << deg << " n_q " << nq;
    EXPECT_NE(lookup_face_kernels<double>(deg, nq), nullptr);
    EXPECT_NE(lookup_cell_kernels<float>(deg, nq), nullptr);
    EXPECT_NE(lookup_face_kernels<float>(deg, nq), nullptr);
  }
  // uncovered sizes fall back to the generic path
  EXPECT_EQ(lookup_cell_kernels<double>(10, 11), nullptr);
  EXPECT_EQ(lookup_face_kernels<double>(3, 9), nullptr);
}

TEST(KernelDispatch, DisableSwitchForcesGenericPath)
{
  ASSERT_TRUE(specialized_kernels_enabled());
  set_specialized_kernels_enabled(false);
  EXPECT_EQ(lookup_cell_kernels<double>(3, 4), nullptr);
  EXPECT_EQ(lookup_face_kernels<double>(3, 4), nullptr);
  set_specialized_kernels_enabled(true);
  EXPECT_NE(lookup_cell_kernels<double>(3, 4), nullptr);
}

TEST(KernelDispatch, CellKernelsMatchGeneric)
{
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    SCOPED_TRACE("degree " + std::to_string(deg) + " n_q " +
                 std::to_string(nq));
    const ShapeInfo<double> shape(deg, nq);
    const auto *k = lookup_cell_kernels<double>(deg, nq);
    ASSERT_NE(k, nullptr);

    const unsigned int n = deg + 1;
    const unsigned int n3 = n * n * n, nq3 = nq * nq * nq;
    const unsigned int scratch = std::max(n, nq) * std::max(n, nq) *
                                 std::max(n, nq);
    AlignedVector<VAd> tmp1(scratch), tmp2(scratch);

    // interpolate_to_quad
    const auto dofs = random_batch(n3);
    AlignedVector<VAd> vq(nq3), vq_ref(nq3);
    k->interpolate_to_quad(shape, dofs.data(), vq.data(), tmp1.data(),
                           tmp2.data());
    apply_matrix_1d_evenodd<false, false>(
      shape.values_eo_e.data(), shape.values_eo_o.data(), nq, n, 1,
      dofs.data(), tmp1.data(), 0, {{n, n, n}});
    apply_matrix_1d_evenodd<false, false>(
      shape.values_eo_e.data(), shape.values_eo_o.data(), nq, n, 1,
      tmp1.data(), tmp2.data(), 1, {{nq, n, n}});
    apply_matrix_1d_evenodd<false, false>(
      shape.values_eo_e.data(), shape.values_eo_o.data(), nq, n, 1,
      tmp2.data(), vq_ref.data(), 2, {{nq, nq, n}});
    expect_batches_near(vq, vq_ref, 1e-14, "interpolate_to_quad");

    // collocation_gradients
    AlignedVector<VAd> gq(3 * nq3), gq_ref(3 * nq3);
    k->collocation_gradients(shape, vq_ref.data(), gq.data());
    for (unsigned int d = 0; d < 3; ++d)
      apply_matrix_1d_evenodd<false, false>(
        shape.grad_colloc_eo_e.data(), shape.grad_colloc_eo_o.data(), nq, nq,
        -1, vq_ref.data(), gq_ref.data() + d * nq3, d, {{nq, nq, nq}});
    expect_batches_near(gq, gq_ref, 1e-14, "collocation_gradients");

    // collocation_gradients_transpose, both overwrite modes
    for (const bool overwrite : {true, false})
    {
      AlignedVector<VAd> acc = random_batch(nq3);
      AlignedVector<VAd> acc_ref = acc;
      k->collocation_gradients_transpose(shape, gq_ref.data(), acc.data(),
                                         overwrite);
      for (unsigned int d = 0; d < 3; ++d)
      {
        if (overwrite && d == 0)
          apply_matrix_1d_evenodd<true, false>(
            shape.grad_colloc_eo_e.data(), shape.grad_colloc_eo_o.data(), nq,
            nq, -1, gq_ref.data() + d * nq3, acc_ref.data(), d,
            {{nq, nq, nq}});
        else
          apply_matrix_1d_evenodd<true, true>(
            shape.grad_colloc_eo_e.data(), shape.grad_colloc_eo_o.data(), nq,
            nq, -1, gq_ref.data() + d * nq3, acc_ref.data(), d,
            {{nq, nq, nq}});
      }
      expect_batches_near(acc, acc_ref, 1e-13,
                          "collocation_gradients_transpose");
    }

    // integrate_from_quad
    AlignedVector<VAd> out(n3), out_ref(n3);
    k->integrate_from_quad(shape, vq_ref.data(), out.data(), tmp1.data(),
                           tmp2.data());
    apply_matrix_1d_evenodd<true, false>(
      shape.values_eo_e.data(), shape.values_eo_o.data(), nq, n, 1,
      vq_ref.data(), tmp1.data(), 2, {{nq, nq, nq}});
    apply_matrix_1d_evenodd<true, false>(
      shape.values_eo_e.data(), shape.values_eo_o.data(), nq, n, 1,
      tmp1.data(), tmp2.data(), 1, {{nq, nq, n}});
    apply_matrix_1d_evenodd<true, false>(
      shape.values_eo_e.data(), shape.values_eo_o.data(), nq, n, 1,
      tmp2.data(), out_ref.data(), 0, {{nq, n, n}});
    expect_batches_near(out, out_ref, 1e-14, "integrate_from_quad");
  }
}

TEST(KernelDispatch, FaceKernelsMatchGeneric)
{
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    SCOPED_TRACE("degree " + std::to_string(deg) + " n_q " +
                 std::to_string(nq));
    const ShapeInfo<double> shape(deg, nq);
    const auto *k = lookup_face_kernels<double>(deg, nq);
    ASSERT_NE(k, nullptr);

    const unsigned int n = deg + 1;
    const unsigned int n3 = n * n * n;
    const unsigned int plane = std::max(n, nq) * std::max(n, nq);
    AlignedVector<VAd> tmp(plane);
    const std::array<unsigned int, 3> cell_e{{n, n, n}};

    const auto dofs = random_batch(n3);
    for (unsigned int dir = 0; dir < 3; ++dir)
    {
      AlignedVector<VAd> p(plane), p_ref(plane);
      k->contract_to_face[dir](shape.face_value[1].data(), dofs.data(),
                               p.data());
      contract_to_face<false>(shape.face_value[1].data(), n, dofs.data(),
                              p_ref.data(), dir, cell_e);
      for (unsigned int i = 0; i < n * n; ++i)
        for (unsigned int l = 0; l < VAd::width; ++l)
          ASSERT_NEAR(p[i][l], p_ref[i][l], 1e-14) << "contract dir " << dir;

      AlignedVector<VAd> acc = random_batch(n3);
      AlignedVector<VAd> acc_ref = acc;
      k->expand_from_face_add[dir](shape.face_grad[0].data(), p_ref.data(),
                                   acc.data());
      expand_from_face<true>(shape.face_grad[0].data(), n, p_ref.data(),
                             acc_ref.data(), dir, cell_e);
      expect_batches_near(acc, acc_ref, 1e-13, "expand_from_face_add");
    }

    // 2D plane interpolation with the regular and subface matrices
    for (const double *M0 : {shape.values.data(), shape.subface_values[0].data()})
      for (const double *M1 :
           {shape.gradients.data(), shape.subface_values[1].data()})
      {
        const auto in = random_batch(n * n);
        AlignedVector<VAd> out(nq * nq), out_ref(nq * nq);
        k->interp_plane(M0, M1, in.data(), out.data(), tmp.data());
        apply_matrix_2d<false, false>(M0, nq, n, in.data(), tmp.data(), 0,
                                      {{n, n}});
        apply_matrix_2d<false, false>(M1, nq, n, tmp.data(), out_ref.data(),
                                      1, {{nq, n}});
        expect_batches_near(out, out_ref, 1e-14, "interp_plane");

        const auto qin = random_batch(nq * nq);
        AlignedVector<VAd> back(n * n), back_ref(n * n);
        k->interp_plane_transpose(M0, M1, qin.data(), back.data(),
                                  tmp.data());
        apply_matrix_2d<true, false>(M1, nq, n, qin.data(), tmp.data(), 1,
                                     {{nq, nq}});
        apply_matrix_2d<true, false>(M0, nq, n, tmp.data(), back_ref.data(),
                                     0, {{nq, n}});
        expect_batches_near(back, back_ref, 1e-14, "interp_plane_transpose");

        AlignedVector<VAd> acc = random_batch(n * n);
        AlignedVector<VAd> acc_ref = acc;
        k->interp_plane_transpose_add(M0, M1, qin.data(), acc.data(),
                                      tmp.data());
        apply_matrix_2d<true, false>(M1, nq, n, qin.data(), tmp.data(), 1,
                                     {{nq, nq}});
        apply_matrix_2d<true, true>(M0, nq, n, tmp.data(), acc_ref.data(), 0,
                                    {{nq, n}});
        expect_batches_near(acc, acc_ref, 1e-13,
                            "interp_plane_transpose_add");
      }
  }
}

// ---------------------------------------------------------------------------
// Kernel backends (fem/kernel_backend.h): every dispatch size x backend pair.
// The batch backend must be bitwise-identical to the fixed-size AoSoA tables
// it wraps (and to the generic sweeps where no table exists); the SoA
// backend's lane-major scalar staging changes the summation order, so it
// agrees to 1e-13. The strict DGFLOW_BACKEND parse is covered at the end.
// ---------------------------------------------------------------------------

#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "fem/kernel_backend.h"

namespace
{
bool batches_bitwise_equal(const AlignedVector<VAd> &a,
                           const AlignedVector<VAd> &b)
{
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(VAd)) == 0;
}

/// First @p count entries of @p v: the face-plane buffers are sized for the
/// larger of the dof/quad extents, but only the dof-plane prefix is defined
/// output of the transpose kernels (the rest is scratch territory).
AlignedVector<VAd> prefix(const AlignedVector<VAd> &v, unsigned int count)
{
  AlignedVector<VAd> p(count);
  for (unsigned int i = 0; i < count; ++i)
    p[i] = v[i];
  return p;
}

/// Like expect_batches_near, but normalized by the inf-norm of the reference
/// batch: a 1D contraction's rounding error scales with the largest partial
/// sum, not with the (possibly cancelled-down) individual entries.
void expect_batches_close(const AlignedVector<VAd> &a,
                          const AlignedVector<VAd> &b, const double tol,
                          const char *what)
{
  ASSERT_EQ(a.size(), b.size()) << what;
  double bmax = 1.;
  for (std::size_t i = 0; i < b.size(); ++i)
    for (unsigned int l = 0; l < VAd::width; ++l)
      bmax = std::max(bmax, std::abs(b[i][l]));
  for (std::size_t i = 0; i < a.size(); ++i)
    for (unsigned int l = 0; l < VAd::width; ++l)
      ASSERT_NEAR(a[i][l], b[i][l], tol * bmax)
        << what << " entry " << i << " lane " << l;
}
} // namespace

TEST(KernelBackend, SoALookupCoversAllListedSizesAndOnlyThose)
{
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    EXPECT_NE(lookup_soa_cell_kernels<double>(deg, nq), nullptr)
      << "degree " << deg << " n_q " << nq;
    EXPECT_NE(lookup_soa_face_kernels<double>(deg, nq), nullptr);
    EXPECT_NE(lookup_soa_cell_kernels<float>(deg, nq), nullptr);
    EXPECT_NE(lookup_soa_face_kernels<float>(deg, nq), nullptr);
  }
  EXPECT_EQ(lookup_soa_cell_kernels<double>(10, 11), nullptr);
  EXPECT_EQ(lookup_soa_face_kernels<double>(3, 9), nullptr);
}

TEST(KernelBackend, DeprecatedShimMapsOntoBackendDefault)
{
  ASSERT_EQ(default_kernel_backend(), KernelBackendType::batch);
  ASSERT_TRUE(specialized_kernels_enabled());
  set_specialized_kernels_enabled(false);
  EXPECT_EQ(default_kernel_backend(), KernelBackendType::generic);
  EXPECT_EQ(lookup_soa_cell_kernels<double>(3, 4), nullptr);
  EXPECT_EQ(lookup_soa_face_kernels<double>(3, 4), nullptr);
  set_specialized_kernels_enabled(true);
  EXPECT_EQ(default_kernel_backend(), KernelBackendType::batch);
  EXPECT_NE(lookup_soa_cell_kernels<double>(3, 4), nullptr);
}

TEST(KernelBackend, NamesRoundTrip)
{
  EXPECT_STREQ(kernel_backend_name(KernelBackendType::batch), "batch");
  EXPECT_STREQ(kernel_backend_name(KernelBackendType::soa), "soa");
  EXPECT_STREQ(kernel_backend_name(KernelBackendType::generic), "generic");
}

/// Sweeps the full cell + face entry-point chain of one backend and returns
/// all outputs concatenated, from identical inputs per call.
struct BackendSweep
{
  AlignedVector<VAd> vq, gq, vq_acc, dofs_out;       // cell chain
  AlignedVector<VAd> plane, cell_acc, interp, back;  // face chain
};

namespace
{
/// When @p ref is non-null, each stage consumes the reference chain's
/// intermediate results instead of this backend's own — so the comparison
/// tests every entry point in isolation rather than compounding per-stage
/// rounding differences through the whole sweep.
BackendSweep sweep_backend(KernelBackend<double> &backend,
                           const ShapeInfo<double> &shape,
                           const AlignedVector<VAd> &dofs,
                           const AlignedVector<VAd> &acc_seed,
                           const BackendSweep *ref = nullptr)
{
  const unsigned int n = shape.n_dofs_1d, nq = shape.n_q_1d;
  const unsigned int n3 = n * n * n, nq3 = nq * nq * nq;
  BackendSweep s;
  s.vq.resize(nq3);
  backend.interpolate_to_quad(dofs.data(), s.vq.data());
  const AlignedVector<VAd> &vq_in = ref ? ref->vq : s.vq;
  s.gq.resize(3 * nq3);
  backend.collocation_gradients(vq_in.data(), s.gq.data());
  s.vq_acc = vq_in;
  backend.collocation_gradients_transpose((ref ? ref->gq : s.gq).data(),
                                          s.vq_acc.data(), false);
  s.dofs_out.resize(n3);
  backend.integrate_from_quad((ref ? ref->vq_acc : s.vq_acc).data(),
                              s.dofs_out.data());

  const unsigned int plane_n = std::max(n, nq) * std::max(n, nq);
  s.plane.resize(plane_n);
  backend.contract_to_face(shape.face_value[0].data(), dofs.data(),
                           s.plane.data(), 1);
  const AlignedVector<VAd> &plane_in = ref ? ref->plane : s.plane;
  s.cell_acc = acc_seed;
  backend.expand_from_face_add(shape.face_grad[1].data(), plane_in.data(),
                               s.cell_acc.data(), 1);
  s.interp.resize(nq * nq);
  backend.interp_plane(shape.values.data(), shape.gradients.data(),
                       plane_in.data(), s.interp.data());
  s.back.resize(plane_n);
  for (unsigned int i = 0; i < plane_n; ++i)
    s.back[i] = acc_seed[i];
  backend.interp_plane_transpose(shape.values.data(), shape.gradients.data(),
                                 (ref ? ref->interp : s.interp).data(),
                                 s.back.data(), true);
  return s;
}
} // namespace

TEST(KernelBackend, BatchIsBitwiseIdenticalToDispatchTablesEverySize)
{
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    SCOPED_TRACE("degree " + std::to_string(deg) + " n_q " +
                 std::to_string(nq));
    const ShapeInfo<double> shape(deg, nq);
    const unsigned int n = deg + 1;
    const auto dofs = random_batch(n * n * n);
    const auto acc = random_batch(n * n * n);

    auto batch =
      make_kernel_backend<double>(KernelBackendType::batch, shape);
    ASSERT_EQ(batch->type(), KernelBackendType::batch);
    const BackendSweep got = sweep_backend(*batch, shape, dofs, acc);

    // reference: the raw fixed-size tables, exactly as the pre-backend
    // evaluators called them
    const auto *ck = lookup_cell_kernels<double>(deg, nq);
    const auto *fk = lookup_face_kernels<double>(deg, nq);
    ASSERT_NE(ck, nullptr);
    ASSERT_NE(fk, nullptr);
    const unsigned int n3 = n * n * n, nq3 = nq * nq * nq;
    const unsigned int scratch =
      std::max(n, nq) * std::max(n, nq) * std::max(n, nq);
    AlignedVector<VAd> tmp1(scratch), tmp2(scratch);
    BackendSweep ref;
    ref.vq.resize(nq3);
    ck->interpolate_to_quad(shape, dofs.data(), ref.vq.data(), tmp1.data(),
                            tmp2.data());
    ref.gq.resize(3 * nq3);
    ck->collocation_gradients(shape, ref.vq.data(), ref.gq.data());
    ref.vq_acc = ref.vq;
    ck->collocation_gradients_transpose(shape, ref.gq.data(),
                                        ref.vq_acc.data(), false);
    ref.dofs_out.resize(n3);
    ck->integrate_from_quad(shape, ref.vq_acc.data(), ref.dofs_out.data(),
                            tmp1.data(), tmp2.data());
    const unsigned int plane_n = std::max(n, nq) * std::max(n, nq);
    AlignedVector<VAd> ptmp(plane_n);
    ref.plane.resize(plane_n);
    fk->contract_to_face[1](shape.face_value[0].data(), dofs.data(),
                            ref.plane.data());
    ref.cell_acc = acc;
    fk->expand_from_face_add[1](shape.face_grad[1].data(), ref.plane.data(),
                                ref.cell_acc.data());
    ref.interp.resize(nq * nq);
    fk->interp_plane(shape.values.data(), shape.gradients.data(),
                     ref.plane.data(), ref.interp.data(), ptmp.data());
    ref.back.resize(plane_n);
    for (unsigned int i = 0; i < plane_n; ++i)
      ref.back[i] = acc[i];
    fk->interp_plane_transpose_add(shape.values.data(),
                                   shape.gradients.data(), ref.interp.data(),
                                   ref.back.data(), ptmp.data());

    EXPECT_TRUE(batches_bitwise_equal(got.vq, ref.vq));
    EXPECT_TRUE(batches_bitwise_equal(got.gq, ref.gq));
    EXPECT_TRUE(batches_bitwise_equal(got.vq_acc, ref.vq_acc));
    EXPECT_TRUE(batches_bitwise_equal(got.dofs_out, ref.dofs_out));
    EXPECT_TRUE(batches_bitwise_equal(got.plane, ref.plane));
    EXPECT_TRUE(batches_bitwise_equal(got.cell_acc, ref.cell_acc));
    EXPECT_TRUE(batches_bitwise_equal(got.interp, ref.interp));
    EXPECT_TRUE(batches_bitwise_equal(got.back, ref.back));
  }
}

TEST(KernelBackend, SoAMatchesBatchEverySizeTo1em13)
{
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    SCOPED_TRACE("degree " + std::to_string(deg) + " n_q " +
                 std::to_string(nq));
    const ShapeInfo<double> shape(deg, nq);
    const unsigned int n = deg + 1;
    const auto dofs = random_batch(n * n * n);
    const auto acc = random_batch(n * n * n);

    auto batch = make_kernel_backend<double>(KernelBackendType::batch, shape);
    auto soa = make_kernel_backend<double>(KernelBackendType::soa, shape);
    ASSERT_EQ(soa->type(), KernelBackendType::soa);
    const BackendSweep b = sweep_backend(*batch, shape, dofs, acc);
    const BackendSweep s = sweep_backend(*soa, shape, dofs, acc, &b);

    // the plain-sweep summation order differs from even-odd, so per entry
    // point the agreement is a few 1e-12 of the largest partial sum on
    // random [-1,1] inputs; the ISSUE's 1e-13 acceptance is the mesh-level
    // LaplaceBackend agreement, where the assembled per-dof results are the
    // quantity of interest (tests/test_laplace.cpp)
    const unsigned int n2 = n * n;
    expect_batches_close(s.vq, b.vq, 1e-11, "soa interpolate_to_quad");
    expect_batches_close(s.gq, b.gq, 1e-11, "soa collocation_gradients");
    expect_batches_close(s.vq_acc, b.vq_acc, 1e-11,
                         "soa collocation_gradients_transpose");
    expect_batches_close(s.dofs_out, b.dofs_out, 1e-11,
                         "soa integrate_from_quad");
    expect_batches_close(prefix(s.plane, n2), prefix(b.plane, n2), 1e-11,
                         "soa contract_to_face");
    expect_batches_close(s.cell_acc, b.cell_acc, 1e-11,
                         "soa expand_from_face_add");
    expect_batches_close(s.interp, b.interp, 1e-11, "soa interp_plane");
    expect_batches_close(prefix(s.back, n2), prefix(b.back, n2), 1e-11,
                         "soa interp_plane_transpose");
  }
}

TEST(KernelBackend, GenericMatchesBatchEverySize)
{
  // the batch backend's tables share the even-odd summation order with the
  // generic runtime sweeps, so they agree to a few ULPs on every size
  for (const auto &[deg, nq] : dispatch_sizes())
  {
    SCOPED_TRACE("degree " + std::to_string(deg) + " n_q " +
                 std::to_string(nq));
    const ShapeInfo<double> shape(deg, nq);
    const unsigned int n = deg + 1;
    const auto dofs = random_batch(n * n * n);
    const auto acc = random_batch(n * n * n);

    auto batch = make_kernel_backend<double>(KernelBackendType::batch, shape);
    auto gen = make_kernel_backend<double>(KernelBackendType::generic, shape);
    ASSERT_EQ(gen->type(), KernelBackendType::generic);
    const BackendSweep b = sweep_backend(*batch, shape, dofs, acc);
    const BackendSweep g = sweep_backend(*gen, shape, dofs, acc, &b);

    expect_batches_near(g.vq, b.vq, 1e-13, "generic interpolate_to_quad");
    expect_batches_near(g.gq, b.gq, 1e-13, "generic collocation_gradients");
    expect_batches_near(g.dofs_out, b.dofs_out, 1e-13,
                        "generic integrate_from_quad");
    expect_batches_near(g.cell_acc, b.cell_acc, 1e-13,
                        "generic expand_from_face_add");
    expect_batches_near(prefix(g.back, n * n), prefix(b.back, n * n), 1e-13,
                        "generic interp_plane_transpose");
  }
}

TEST(KernelBackend, UncoveredSizeFallsBackOnEveryBackend)
{
  // (degree 10, n_q 11) has no fixed-size instantiation: all three backends
  // must still produce consistent results through their runtime fallbacks
  const ShapeInfo<double> shape(10, 11);
  const unsigned int n = 11;
  const auto dofs = random_batch(n * n * n);
  const auto acc = random_batch(n * n * n);
  auto batch = make_kernel_backend<double>(KernelBackendType::batch, shape);
  auto soa = make_kernel_backend<double>(KernelBackendType::soa, shape);
  auto gen = make_kernel_backend<double>(KernelBackendType::generic, shape);
  const BackendSweep b = sweep_backend(*batch, shape, dofs, acc);
  const BackendSweep s = sweep_backend(*soa, shape, dofs, acc, &b);
  const BackendSweep g = sweep_backend(*gen, shape, dofs, acc, &b);
  // batch falls back to exactly the generic sweeps: bitwise equal
  EXPECT_TRUE(batches_bitwise_equal(b.vq, g.vq));
  EXPECT_TRUE(batches_bitwise_equal(b.dofs_out, g.dofs_out));
  expect_batches_close(s.vq, b.vq, 1e-11, "soa fallback interpolate");
  expect_batches_close(s.dofs_out, b.dofs_out, 1e-11, "soa fallback integrate");
}

TEST(KernelBackend, EnvSelectionParsesStrictly)
{
  ASSERT_EQ(unsetenv("DGFLOW_BACKEND"), 0);
  EXPECT_EQ(kernel_backend_from_env(KernelBackendType::batch),
            KernelBackendType::batch);
  EXPECT_EQ(kernel_backend_from_env(KernelBackendType::soa),
            KernelBackendType::soa);

  ASSERT_EQ(setenv("DGFLOW_BACKEND", "batch", 1), 0);
  EXPECT_EQ(kernel_backend_from_env(KernelBackendType::generic),
            KernelBackendType::batch);
  ASSERT_EQ(setenv("DGFLOW_BACKEND", "soa", 1), 0);
  EXPECT_EQ(kernel_backend_from_env(KernelBackendType::batch),
            KernelBackendType::soa);
  ASSERT_EQ(setenv("DGFLOW_BACKEND", "generic", 1), 0);
  EXPECT_EQ(kernel_backend_from_env(KernelBackendType::batch),
            KernelBackendType::generic);

  ASSERT_EQ(setenv("DGFLOW_BACKEND", "SOA", 1), 0); // case-sensitive
  try
  {
    kernel_backend_from_env(KernelBackendType::batch);
    FAIL() << "expected EnvVarError";
  }
  catch (const EnvVarError &e)
  {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("DGFLOW_BACKEND"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'batch', 'soa', 'generic'"), std::string::npos)
      << msg;
  }
  ASSERT_EQ(unsetenv("DGFLOW_BACKEND"), 0);
}
