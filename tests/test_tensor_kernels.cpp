#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fem/tensor_kernels.h"
#include "matrixfree/fe_evaluation.h"
#include "mesh/generators.h"
#include "simd/vectorized_array.h"

using namespace dgflow;

namespace
{
std::mt19937 rng(42);

std::vector<double> random_vector(const std::size_t n)
{
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<double> v(n);
  for (auto &x : v)
    x = dist(rng);
  return v;
}

/// Reference implementation: dense application of M along one direction.
std::vector<double> reference_apply(const std::vector<double> &M,
                                    const unsigned int m, const unsigned int n,
                                    const std::vector<double> &in,
                                    const unsigned int dir,
                                    std::array<unsigned int, 3> e,
                                    const bool transpose)
{
  const unsigned int n_in = transpose ? m : n;
  const unsigned int n_out = transpose ? n : m;
  EXPECT_EQ(e[dir], n_in);
  std::array<unsigned int, 3> eo = e;
  eo[dir] = n_out;
  std::vector<double> out(eo[0] * eo[1] * eo[2], 0.);
  for (unsigned int i2 = 0; i2 < eo[2]; ++i2)
    for (unsigned int i1 = 0; i1 < eo[1]; ++i1)
      for (unsigned int i0 = 0; i0 < eo[0]; ++i0)
      {
        std::array<unsigned int, 3> oi{{i0, i1, i2}};
        double sum = 0;
        for (unsigned int c = 0; c < n_in; ++c)
        {
          std::array<unsigned int, 3> ii = oi;
          ii[dir] = c;
          const double mv =
            transpose ? M[c * n + oi[dir]] : M[oi[dir] * n + c];
          sum += mv * in[(ii[2] * e[1] + ii[1]) * e[0] + ii[0]];
        }
        out[(i2 * eo[1] + i1) * eo[0] + i0] = sum;
      }
  return out;
}
} // namespace

struct KernelCase
{
  unsigned int m, n, dir;
};

class ApplyMatrix1D : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(ApplyMatrix1D, MatchesDenseReference)
{
  const auto [m, n, dir] = GetParam();
  std::array<unsigned int, 3> e{{4, 3, 5}};
  e[dir] = n;
  const auto M = random_vector(m * n);
  const auto in = random_vector(e[0] * e[1] * e[2]);
  const auto ref = reference_apply(M, m, n, in, dir, e, false);

  std::array<unsigned int, 3> eo = e;
  eo[dir] = m;
  std::vector<double> out(eo[0] * eo[1] * eo[2], 0.);
  apply_matrix_1d<false, false>(M.data(), m, n, in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], ref[i], 1e-13);

  // additive application accumulates
  apply_matrix_1d<false, true>(M.data(), m, n, in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], 2. * ref[i], 1e-13);
}

TEST_P(ApplyMatrix1D, TransposeMatchesDenseReference)
{
  const auto [m, n, dir] = GetParam();
  std::array<unsigned int, 3> e{{4, 3, 5}};
  e[dir] = m; // transpose contracts over rows
  const auto M = random_vector(m * n);
  const auto in = random_vector(e[0] * e[1] * e[2]);
  const auto ref = reference_apply(M, m, n, in, dir, e, true);

  std::array<unsigned int, 3> eo = e;
  eo[dir] = n;
  std::vector<double> out(eo[0] * eo[1] * eo[2], 0.);
  apply_matrix_1d<true, false>(M.data(), m, n, in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], ref[i], 1e-13);
}

TEST_P(ApplyMatrix1D, AdjointIdentity)
{
  // <M x, y> == <x, M^T y> for the same direction
  const auto [m, n, dir] = GetParam();
  std::array<unsigned int, 3> ex{{4, 3, 5}}, ey{{4, 3, 5}};
  ex[dir] = n;
  ey[dir] = m;
  const auto M = random_vector(m * n);
  const auto x = random_vector(ex[0] * ex[1] * ex[2]);
  const auto y = random_vector(ey[0] * ey[1] * ey[2]);

  std::vector<double> Mx(y.size());
  apply_matrix_1d<false, false>(M.data(), m, n, x.data(), Mx.data(), dir, ex);
  std::vector<double> Mty(x.size());
  apply_matrix_1d<true, false>(M.data(), m, n, y.data(), Mty.data(), dir, ey);

  double a = 0, b = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    a += Mx[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    b += x[i] * Mty[i];
  EXPECT_NEAR(a, b, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
  Shapes, ApplyMatrix1D,
  ::testing::Values(KernelCase{4, 4, 0}, KernelCase{4, 4, 1},
                    KernelCase{4, 4, 2}, KernelCase{6, 4, 0},
                    KernelCase{6, 4, 1}, KernelCase{6, 4, 2},
                    KernelCase{2, 5, 0}, KernelCase{2, 5, 2},
                    KernelCase{1, 3, 1}, KernelCase{8, 8, 1}));

TEST(FaceContraction, InterpolatesConstantExactly)
{
  // contract with a vector summing to 1 (partition of unity at a face point)
  const unsigned int n = 4;
  std::array<unsigned int, 3> e{{n, n, n}};
  std::vector<double> v{0.1, 0.4, 0.3, 0.2};
  std::vector<double> in(n * n * n, 2.5);
  std::vector<double> out(n * n);
  for (unsigned int dir = 0; dir < 3; ++dir)
  {
    contract_to_face<false>(v.data(), n, in.data(), out.data(), dir, e);
    for (const double x : out)
      EXPECT_NEAR(x, 2.5, 1e-14);
  }
}

TEST(FaceContraction, ExpandIsAdjointOfContract)
{
  const unsigned int n = 5;
  std::array<unsigned int, 3> e{{n, n, n}};
  const auto v = random_vector(n);
  const auto x = random_vector(n * n * n);
  const auto y = random_vector(n * n);
  for (unsigned int dir = 0; dir < 3; ++dir)
  {
    std::vector<double> face(n * n);
    contract_to_face<false>(v.data(), n, x.data(), face.data(), dir, e);
    std::vector<double> cell(n * n * n, 0.);
    expand_from_face<false>(v.data(), n, y.data(), cell.data(), dir, e);
    double a = 0, b = 0;
    for (unsigned int i = 0; i < face.size(); ++i)
      a += face[i] * y[i];
    for (unsigned int i = 0; i < cell.size(); ++i)
      b += cell[i] * x[i];
    EXPECT_NEAR(a, b, 1e-12);
  }
}

TEST(FaceContraction, WorksWithVectorizedArray)
{
  using VA = VectorizedArray<double>;
  const unsigned int n = 3;
  std::array<unsigned int, 3> e{{n, n, n}};
  const auto v = random_vector(n);
  std::vector<VA> in(n * n * n);
  for (unsigned int i = 0; i < in.size(); ++i)
    for (unsigned int l = 0; l < VA::width; ++l)
      in[i][l] = double(i) + 0.01 * l;
  std::vector<VA> out(n * n);
  contract_to_face<false>(v.data(), n, in.data(), out.data(), 1, e);

  // compare against per-lane scalar computation
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    std::vector<double> in_l(in.size()), out_l(out.size());
    for (unsigned int i = 0; i < in.size(); ++i)
      in_l[i] = in[i][l];
    contract_to_face<false>(v.data(), n, in_l.data(), out_l.data(), 1, e);
    for (unsigned int i = 0; i < out.size(); ++i)
      EXPECT_NEAR(out[i][l], out_l[i], 1e-14);
  }
}

// ---------------------------------------------------------------------------
// even-odd decomposition
// ---------------------------------------------------------------------------

namespace
{
/// builds a random matrix with the (anti)symmetry of symmetric point sets
std::vector<double> random_symmetric_matrix(const unsigned int m,
                                            const unsigned int n,
                                            const int sign)
{
  std::vector<double> M(m * n);
  std::uniform_real_distribution<double> dist(-1., 1.);
  for (unsigned int r = 0; r < (m + 1) / 2; ++r)
    for (unsigned int c = 0; c < n; ++c)
    {
      const double v = dist(rng);
      M[r * n + c] = v;
      M[(m - 1 - r) * n + (n - 1 - c)] = sign * v;
    }
  // the center entry of an odd anti-symmetric matrix must vanish
  if (sign < 0 && m % 2 == 1 && n % 2 == 1)
    M[(m / 2) * n + n / 2] = 0.;
  return M;
}
} // namespace

struct EoCase
{
  unsigned int m, n, dir;
  int sign;
};

class EvenOddKernel : public ::testing::TestWithParam<EoCase>
{};

TEST_P(EvenOddKernel, MatchesGenericKernel)
{
  const auto [m, n, dir, sign] = GetParam();
  const auto M = random_symmetric_matrix(m, n, sign);
  const unsigned int mh = (m + 1) / 2, nh = (n + 1) / 2;
  std::vector<double> Me(mh * nh), Mo(mh * nh);
  build_even_odd_matrices(M.data(), m, n, Me.data(), Mo.data());

  std::array<unsigned int, 3> e{{3, 4, 5}};
  e[dir] = n;
  const auto in = random_vector(e[0] * e[1] * e[2]);
  std::array<unsigned int, 3> eo_ext = e;
  eo_ext[dir] = m;
  std::vector<double> ref(eo_ext[0] * eo_ext[1] * eo_ext[2]);
  apply_matrix_1d<false, false>(M.data(), m, n, in.data(), ref.data(), dir, e);
  std::vector<double> out(ref.size(), -7.);
  apply_matrix_1d_evenodd<false, false>(Me.data(), Mo.data(), m, n, sign,
                                        in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(out[i], ref[i], 1e-13) << "fwd entry " << i;

  // additive variant
  apply_matrix_1d_evenodd<false, true>(Me.data(), Mo.data(), m, n, sign,
                                       in.data(), out.data(), dir, e);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(out[i], 2. * ref[i], 1e-13);

  // transpose
  const auto in_t = random_vector(eo_ext[0] * eo_ext[1] * eo_ext[2]);
  std::vector<double> ref_t(e[0] * e[1] * e[2]);
  apply_matrix_1d<true, false>(M.data(), m, n, in_t.data(), ref_t.data(), dir,
                               eo_ext);
  std::vector<double> out_t(ref_t.size(), -3.);
  apply_matrix_1d_evenodd<true, false>(Me.data(), Mo.data(), m, n, sign,
                                       in_t.data(), out_t.data(), dir,
                                       eo_ext);
  for (std::size_t i = 0; i < ref_t.size(); ++i)
    ASSERT_NEAR(out_t[i], ref_t[i], 1e-13) << "transpose entry " << i;
}

INSTANTIATE_TEST_SUITE_P(
  Shapes, EvenOddKernel,
  ::testing::Values(EoCase{4, 4, 0, 1}, EoCase{4, 4, 1, -1},
                    EoCase{5, 5, 2, 1}, EoCase{5, 5, 0, -1},
                    EoCase{6, 4, 1, 1}, EoCase{6, 4, 2, -1},
                    EoCase{5, 4, 0, 1}, EoCase{5, 4, 1, -1},
                    EoCase{3, 3, 2, -1}, EoCase{8, 8, 0, 1}));

TEST(EvenOddFEEvaluation, MatchesGenericPath)
{
  // full operator-level check: evaluate+integrate with and without even-odd
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.05 * p[1], p[1] - 0.04 * p[2], p[2]);
  });
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {3};
  data.n_q_points_1d = {5}; // non-collocated: exercises interpolation too
  mf.reinit(mesh, geom, data);

  Vector<double> src(mf.n_dofs(0, 1)), dst_eo(src.size()), dst_gen(src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::sin(0.01 * double(i));

  for (const bool eo : {true, false})
  {
    FEEvaluation<double, 1> phi(mf, 0, 0, eo);
    Vector<double> &dst = eo ? dst_eo : dst_gen;
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(src);
      phi.evaluate(true, true);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        phi.submit_value(phi.get_value(q), q);
        phi.submit_gradient(phi.get_gradient(q), q);
      }
      phi.integrate(true, true);
      phi.distribute_local_to_global(dst);
    }
  }
  for (std::size_t i = 0; i < src.size(); ++i)
    ASSERT_NEAR(dst_eo[i], dst_gen[i], 1e-12 * (1. + std::abs(dst_gen[i])));
}
