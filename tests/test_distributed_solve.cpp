#include <gtest/gtest.h>

#include <cmath>
#include <atomic>

#include "mesh/generators.h"
#include "mesh/partition.h"
#include "multigrid/hybrid_multigrid.h"
#include "operators/laplace_operator.h"
#include "resilience/fault_injection.h"
#include "solvers/cg.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

Mesh make_mesh(const unsigned int refinements)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(refinements);
  return mesh;
}

double exact_solution(const Point &p)
{
  return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
         std::sin(M_PI * p[2]);
}

double forcing(const Point &p) { return 3 * M_PI * M_PI * exact_solution(p); }
} // namespace

TEST(PartitionerTest, GhostListsAreSymmetricAndMatchStats)
{
  const Mesh mesh = make_mesh(2);
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  const auto stats = compute_partition_stats(mesh, rank_of_cell, n_ranks);

  std::vector<vmpi::Partitioner> parts;
  for (int r = 0; r < n_ranks; ++r)
    parts.push_back(
      vmpi::Partitioner::cell_partitioner(mesh, rank_of_cell, r, n_ranks));

  std::size_t covered = 0;
  for (int r = 0; r < n_ranks; ++r)
  {
    covered += parts[r].n_owned();
    EXPECT_EQ(parts[r].n_owned(), stats.cells_per_rank[r]);
    EXPECT_EQ(parts[r].n_neighbors(), stats.neighbors_per_rank[r]);
    EXPECT_EQ(parts[r].n_send_elements(), stats.send_cells_per_rank[r]);
    EXPECT_EQ(parts[r].n_ghosts(), stats.ghost_cells_per_rank[r]);
    // my send list towards q is exactly q's recv list from me
    for (const auto &[q, list] : parts[r].send_lists())
    {
      const auto it = parts[q].recv_lists().find(r);
      ASSERT_NE(it, parts[q].recv_lists().end());
      EXPECT_EQ(list, it->second) << "ranks " << r << " -> " << q;
    }
    for (const std::size_t g : parts[r].ghost_indices())
      EXPECT_FALSE(parts[r].is_owned(g));
  }
  EXPECT_EQ(covered, mesh.n_active_cells());
}

TEST(PartitionerTest, HandshakeFactoryMatchesCellPartitioner)
{
  const Mesh mesh = make_mesh(2);
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto from_mesh = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    const auto from_handshake = vmpi::Partitioner::from_ghost_indices(
      comm, mesh.n_active_cells(), from_mesh.owned_begin(),
      from_mesh.owned_end(), from_mesh.ghost_indices());
    EXPECT_TRUE(from_handshake == from_mesh);
    EXPECT_EQ(from_handshake.send_lists(), from_mesh.send_lists());
    EXPECT_EQ(from_handshake.recv_lists(), from_mesh.recv_lists());
  });
}

TEST(DistributedVectorTest, GhostRoundTripIdentities)
{
  const Mesh mesh = make_mesh(2);
  const int n_ranks = 4;
  const unsigned int block = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  const auto value = [](const std::size_t g, const unsigned int k) {
    return 100. * double(g) + double(k);
  };

  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, block);
    for (std::size_t c = 0; c < part.n_owned(); ++c)
      for (unsigned int k = 0; k < block; ++k)
        v[c * block + k] = value(part.owned_begin() + c, k);

    // forward exchange: every ghost block mirrors its owner's values
    v.update_ghost_values();
    EXPECT_EQ(v.ghost_state(),
              vmpi::DistributedVector<double>::GhostState::ghosted);
    for (const std::size_t g : part.ghost_indices())
    {
      const std::size_t off = v.local_dof_offset(g, block);
      for (unsigned int k = 0; k < block; ++k)
        EXPECT_EQ(v[off + k], value(g, k)) << "ghost " << g;
    }

    // reverse exchange: compress_add returns each ghost copy to its owner,
    // so an owned cell sent to m neighbors ends up at (1 + m) * value
    v.compress_add();
    EXPECT_EQ(v.ghost_state(),
              vmpi::DistributedVector<double>::GhostState::owned_only);
    std::vector<std::size_t> copies(part.n_owned(), 0);
    for (const auto &[q, list] : part.send_lists())
      for (const std::size_t g : list)
        ++copies[g - part.owned_begin()];
    for (std::size_t c = 0; c < part.n_owned(); ++c)
      for (unsigned int k = 0; k < block; ++k)
        EXPECT_DOUBLE_EQ(v[c * block + k],
                         double(1 + copies[c]) *
                           value(part.owned_begin() + c, k));
    // the ghost section is zeroed
    for (std::size_t i = 0; i < v.ghost_size(); ++i)
      EXPECT_EQ(v.data()[v.size() + i], 0.);
  });
}

#ifndef NDEBUG
TEST(DistributedVectorTest, GhostStateContractIsAsserted)
{
  const Mesh mesh = make_mesh(1);
  const int n_ranks = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, 1);
    // reading a ghost block without update_ghost_values() is a contract
    // violation, as is compressing a vector whose ghosts were never filled
    ASSERT_FALSE(part.ghost_indices().empty());
    const std::size_t g = part.ghost_indices().front();
    EXPECT_THROW(v.local_dof_offset(g, 1), std::runtime_error);
    EXPECT_THROW(v.compress_add(), std::runtime_error);
    // a mutating BLAS-1 operation invalidates the ghost state
    v.update_ghost_values();
    v.scale(2.);
    EXPECT_EQ(v.ghost_state(),
              vmpi::DistributedVector<double>::GhostState::owned_only);
  });
}
#endif

TEST(DistributedLaplaceTest, VmultMatchesSerialBitwise)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const unsigned int degree = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  // one partitioned MatrixFree for both runs: identical cell batches (they
  // split at rank boundaries), so the SIMD lane packing and with it every
  // floating-point operation agrees between the serial and distributed paths
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  Vector<double> x(laplace.n_dofs()), y_serial;
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.37 * double(i)) + 0.1;
  laplace.vmult(y_serial, x);

  Vector<double> y_dist(laplace.n_dofs());
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), yd;
    xd.copy_owned_from(x);
    laplace.vmult(yd, xd);
    for (std::size_t i = 0; i < yd.size(); ++i)
      y_dist[yd.first_local_index() + i] = yd.data()[i]; // disjoint ranges
  });

  for (std::size_t i = 0; i < y_serial.size(); ++i)
    ASSERT_EQ(y_dist[i], y_serial[i]) << "dof " << i;
}

TEST(DistributedLaplaceTest, TrafficMatchesPartitionStats)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const unsigned int degree = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  const auto stats = compute_partition_stats(mesh, rank_of_cell, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  const auto predicted =
    predict_exchange_traffic(stats, dofs_per_cell, sizeof(double));

  std::atomic<unsigned long long> total_messages{0}, total_bytes{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), yd;
    xd.copy_owned_from(Vector<double>(laplace.n_dofs()));
    laplace.vmult(yd, xd); // warm-up; the delta below brackets one vmult
    const auto before = comm.traffic();
    laplace.vmult(yd, xd);
    const auto after = comm.traffic();
    // one vmult = exactly one ghost exchange, counted on the send side
    const unsigned long long messages = after.messages - before.messages;
    const unsigned long long bytes = after.bytes - before.bytes;
    EXPECT_EQ(messages, predicted.messages_per_rank[comm.rank()])
      << "rank " << comm.rank();
    EXPECT_EQ(bytes, predicted.bytes_per_rank[comm.rank()])
      << "rank " << comm.rank();
    total_messages += messages;
    total_bytes += bytes;
  });
  EXPECT_EQ(total_messages.load(), predicted.total_messages);
  EXPECT_EQ(total_bytes.load(), predicted.total_bytes);
}

TEST(DistributedSolveTest, JacobiCGMatchesSerial)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const unsigned int degree = 1;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  Vector<double> rhs, diag;
  laplace.assemble_rhs(rhs, forcing, exact_solution);
  laplace.compute_diagonal(diag);

  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 2000;

  Vector<double> x_serial(laplace.n_dofs());
  PreconditionJacobi<double> jacobi;
  jacobi.reinit(diag);
  const auto serial = solve_cg(laplace, x_serial, rhs, jacobi, control);
  ASSERT_TRUE(serial.converged);

  Vector<double> x_dist(laplace.n_dofs());
  std::atomic<unsigned int> dist_iterations{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(rhs);
    vmpi::DistributedVector<double> ddiag(part, comm, dofs_per_cell);
    ddiag.copy_owned_from(diag);
    PreconditionJacobi<double> jd;
    jd.reinit(ddiag);
    const auto stats = solve_cg(laplace, xd, bd, jd, control);
    EXPECT_TRUE(stats.converged);
    if (comm.rank() == 0)
      dist_iterations = stats.iterations;
    for (std::size_t i = 0; i < xd.size(); ++i)
      x_dist[xd.first_local_index() + i] = xd.data()[i];
  });

  EXPECT_NEAR(double(dist_iterations.load()), double(serial.iterations), 2.);
  double diff2 = 0, ref2 = 0;
  for (std::size_t i = 0; i < x_serial.size(); ++i)
  {
    diff2 += (x_dist[i] - x_serial[i]) * (x_dist[i] - x_serial[i]);
    ref2 += x_serial[i] * x_serial[i];
  }
  EXPECT_LE(std::sqrt(diff2 / ref2), 1e-8);
}

// The PR's acceptance test: the hybrid-multigrid-preconditioned pressure
// Poisson solve on 4 logical ranks converges in the same iteration count as
// the serial solve and matches its solution to 1e-10 relative error.
TEST(DistributedSolveTest, MultigridPreconditionedPoissonOn4Ranks)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const unsigned int degree = 3;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  const BoundaryMap bc = all_dirichlet();

  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;

  HybridMultigrid<float>::Options mg_opts;
  mg_opts.rank_of_cell = rank_of_cell;
  mg_opts.n_ranks = n_ranks;

  SolverControl control;
  control.rel_tol = 1e-11;
  control.max_iterations = 100;

  // serial reference (same partitioned batch layout as the distributed run)
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);
  Vector<double> rhs;
  laplace.assemble_rhs(rhs, forcing, exact_solution);

  HybridMultigrid<float> mg_serial;
  mg_serial.setup(mesh, geom, degree, bc, mg_opts);
  Vector<double> x_serial(laplace.n_dofs());
  const auto serial = solve_cg(laplace, x_serial, rhs, mg_serial, control);
  ASSERT_TRUE(serial.converged);

  Vector<double> x_dist(laplace.n_dofs());
  std::atomic<unsigned int> dist_iterations{0};
  std::atomic<bool> dist_converged{true};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    HybridMultigrid<float> mg;
    mg.setup(mesh, geom, degree, bc, mg_opts);
    mg.setup_distributed(comm, part);

    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(rhs);
    const auto stats = solve_cg(laplace, xd, bd, mg, control);
    if (!stats.converged)
      dist_converged = false;
    if (comm.rank() == 0)
      dist_iterations = stats.iterations;
    for (std::size_t i = 0; i < xd.size(); ++i)
      x_dist[xd.first_local_index() + i] = xd.data()[i];
  });

  EXPECT_TRUE(dist_converged.load());
  EXPECT_EQ(dist_iterations.load(), serial.iterations);
  double diff2 = 0, ref2 = 0;
  for (std::size_t i = 0; i < x_serial.size(); ++i)
  {
    diff2 += (x_dist[i] - x_serial[i]) * (x_dist[i] - x_serial[i]);
    ref2 += x_serial[i] * x_serial[i];
  }
  EXPECT_LE(std::sqrt(diff2 / ref2), 1e-10);
}

TEST(DistributedSolveTest, FaultInjectedCGSurfacesTimeout)
{
  const Mesh mesh = make_mesh(1);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {1};
  data.n_q_points_1d = {2};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  resilience::FaultPlan::Config cfg;
  cfg.seed = 11;
  cfg.drop_rate = 1.; // every ghost message is lost: the recv must time out
  resilience::FaultPlan plan(cfg);
  std::atomic<int> timeouts{0};

  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    comm.set_timeout(0.1);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd;
    bd.reinit(part, comm, dofs_per_cell);
    bd = 1.;
    PreconditionIdentity id;
    SolverControl control;
    control.max_iterations = 50;
    try
    {
      solve_cg(laplace, xd, bd, id, control);
    }
    catch (const vmpi::TimeoutError &)
    {
      ++timeouts;
    }
  });
  EXPECT_EQ(timeouts.load(), n_ranks);
}
