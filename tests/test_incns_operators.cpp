#include <gtest/gtest.h>

#include <random>

#include "mesh/generators.h"
#include "matrixfree/field_tools.h"
#include "operators/convective_operator.h"
#include "operators/divergence_gradient.h"
#include "operators/helmholtz_operator.h"
#include "operators/mass_operator.h"
#include "operators/penalty_operator.h"

using namespace dgflow;

namespace
{
FlowBoundaryMap mixed_bc()
{
  // x+ face is a pressure outlet, everything else no-slip walls
  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [](const Point &, double) { return 0.; };
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [](const Point &, double) { return Tensor1<double>(); };
    }
    bc[id] = b;
  }
  return bc;
}

struct OpSetup
{
  Mesh mesh;
  AnalyticGeometry geom;
  MatrixFree<double> mf;
  FlowBoundaryMap bc;
  static constexpr unsigned int k = 3;

  OpSetup()
    : mesh(unit_cube()),
      geom([](index_t, const Point &p) {
        return Point(p[0] + 0.04 * p[1] * p[2], p[1] - 0.03 * p[0] * p[2],
                     p[2] + 0.02 * p[0] * p[1]);
      }),
      bc(mixed_bc())
  {
    mesh.refine_uniform(1);
    MatrixFree<double>::AdditionalData data;
    data.degrees = {k, k - 1};
    data.n_q_points_1d = {k + 1, k, k + 2};
    mf.reinit(mesh, geom, data);
  }
};

Vector<double> random_vec(const std::size_t n, const unsigned int seed)
{
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1., 1.);
  Vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = dist(rng);
  return v;
}
} // namespace

TEST(DivergenceGradient, NegativeAdjointsWithHomogeneousData)
{
  OpSetup s;
  DivergenceOperator<double> div;
  GradientOperator<double> grad;
  div.reinit(s.mf, 0, 1, 0, s.bc);
  grad.reinit(s.mf, 0, 1, 0, s.bc);

  const auto u = random_vec(s.mf.n_dofs(0, 3), 1);
  const auto p = random_vec(s.mf.n_dofs(1, 1), 2);
  Vector<double> Du, Gp;
  div.vmult(Du, u);
  grad.vmult(Gp, p);
  const double a = Gp.dot(u), b = Du.dot(p);
  EXPECT_NEAR(a, -b, 1e-11 * std::abs(a));
}

TEST(DivergenceGradient, DivergenceOfLinearSolenoidalFieldIsZero)
{
  OpSetup s;
  DivergenceOperator<double> div;
  div.reinit(s.mf, 0, 1, 0, s.bc);

  // u = (y + z, z - x? ...) choose div-free linear: u = (x, y, -2z)? has
  // div 0; boundary terms use the actual trace values: pass
  // use_boundary_values=false and compensate by a field that vanishes
  // nowhere; instead use the inhomogeneous path with matching g.
  FlowBoundaryMap bc;
  const auto uf = [](const Point &p, double) {
    return Tensor1<double>(p[0] + 2 * p[1], p[1] - p[2], -2 * p[2] + p[0]);
  };
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [](const Point &, double) { return 0.; };
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = uf;
    }
    bc[id] = b;
  }
  div.reinit(s.mf, 0, 1, 0, bc);

  Vector<double> u;
  interpolate_vector(s.mf, 0, 0,
                     [&](const Point &p) { return uf(p, 0.); }, u);
  Vector<double> Du;
  div.apply(Du, u, 0.);
  EXPECT_NEAR(double(Du.l2_norm()), 0., 1e-11);
}

TEST(ConvectiveOperatorTest, VanishesForConstantField)
{
  OpSetup s;
  const Tensor1<double> c(0.7, -0.3, 0.2);
  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    b.kind = FlowBoundary::Kind::velocity_dirichlet;
    b.velocity = [c](const Point &, double) { return c; };
    bc[id] = b;
  }
  ConvectiveOperator<double> conv;
  conv.reinit(s.mf, 0, 2, bc);

  Vector<double> u;
  interpolate_vector(s.mf, 0, 0, [&](const Point &) { return c; }, u);
  Vector<double> Cu;
  conv.apply(Cu, u, 0.);
  EXPECT_NEAR(double(Cu.linfty_norm()), 0., 1e-12);
}

TEST(ConvectiveOperatorTest, EnergyConsistency)
{
  // with upwind stabilization, <C(u), u> >= boundary production for
  // divergence-free u with homogeneous BCs; here we only verify the operator
  // produces finite, mesh-consistent output and reacts to the sign of u
  OpSetup s;
  ConvectiveOperator<double> conv;
  conv.reinit(s.mf, 0, 2, s.bc);
  Vector<double> u;
  interpolate_vector(s.mf, 0, 0,
                     [](const Point &p) {
                       return Tensor1<double>(std::sin(p[1]), std::cos(p[2]),
                                              p[0] * p[1]);
                     },
                     u);
  Vector<double> Cu, Cmu;
  conv.apply(Cu, u, 0.);
  Vector<double> mu(u.size());
  mu.equ(-1., u);
  conv.apply(Cmu, mu, 0.);
  // C is quadratic: C(-u) = C(u) up to the Lax-Friedrichs term sign; check
  // the quadratic scaling C(2u) = 4 C(u) for the interior-dominated part
  Vector<double> u2(u.size()), Cu2;
  u2.equ(2., u);
  conv.apply(Cu2, u2, 0.);
  // boundary Dirichlet data is zero here, so C is exactly homogeneous of
  // degree 2
  Vector<double> diff(u.size());
  diff.equ(1., Cu2, -4., Cu);
  EXPECT_NEAR(double(diff.l2_norm()), 0., 1e-10 * double(Cu2.l2_norm()));
}

TEST(HelmholtzOperatorTest, SymmetricPositiveDefinite)
{
  OpSetup s;
  HelmholtzOperator<double> helm;
  helm.reinit(s.mf, 0, 0, s.bc, 0.1);
  helm.set_mass_factor(2.5);

  const auto u = random_vec(helm.n_dofs(), 3);
  const auto v = random_vec(helm.n_dofs(), 4);
  Vector<double> Au, Av;
  helm.vmult(Au, u);
  helm.vmult(Av, v);
  const double a = Au.dot(v), b = Av.dot(u);
  EXPECT_NEAR(a, b, 1e-11 * std::abs(a));
  EXPECT_GT(Au.dot(u), 0.);
}

TEST(HelmholtzOperatorTest, DiagonalMatchesProbing)
{
  OpSetup s;
  HelmholtzOperator<double> helm;
  helm.reinit(s.mf, 0, 0, s.bc, 0.05);
  helm.set_mass_factor(1.0);
  Vector<double> diag;
  helm.compute_diagonal(diag);

  Vector<double> e(helm.n_dofs()), Ae;
  std::mt19937 rng(9);
  std::uniform_int_distribution<std::size_t> pick(0, helm.n_dofs() - 1);
  for (unsigned int rep = 0; rep < 10; ++rep)
  {
    const std::size_t i = pick(rng);
    e = 0.;
    e[i] = 1.;
    helm.vmult(Ae, e);
    ASSERT_NEAR(diag[i], Ae[i], 1e-10 * std::abs(Ae[i])) << "dof " << i;
  }
}

TEST(PenaltyOperatorTest, ReducesToMassForZeroDt)
{
  OpSetup s;
  PenaltyOperator<double> pen;
  pen.reinit(s.mf, 0, 0);
  Vector<double> u;
  interpolate_vector(s.mf, 0, 0,
                     [](const Point &p) {
                       return Tensor1<double>(p[0] * p[0], p[1], -p[2]);
                     },
                     u);
  pen.update(u, 0.);
  Vector<double> Pu, Mu;
  pen.vmult(Pu, u);
  MassOperator<double, 3> mass;
  mass.reinit(s.mf, 0, 0);
  mass.vmult(Mu, u);
  for (std::size_t i = 0; i < u.size(); ++i)
    ASSERT_NEAR(Pu[i], Mu[i], 1e-12);
}

TEST(PenaltyOperatorTest, SymmetricAndPenalizesDivergence)
{
  OpSetup s;
  PenaltyOperator<double> pen;
  pen.reinit(s.mf, 0, 0);
  Vector<double> uref;
  interpolate_vector(s.mf, 0, 0,
                     [](const Point &) { return Tensor1<double>(1, 1, 1); },
                     uref);
  pen.update(uref, 0.1);

  const auto u = random_vec(pen.n_dofs(), 5);
  const auto v = random_vec(pen.n_dofs(), 6);
  Vector<double> Au, Av;
  pen.vmult(Au, u);
  pen.vmult(Av, v);
  EXPECT_NEAR(Au.dot(v), Av.dot(u), 1e-11 * std::abs(Au.dot(v)));

  // a strongly divergent field is penalized more than under pure mass
  Vector<double> udiv;
  interpolate_vector(s.mf, 0, 0,
                     [](const Point &p) {
                       return Tensor1<double>(p[0], p[1], p[2]);
                     },
                     udiv);
  Vector<double> Pu, Mu;
  pen.vmult(Pu, udiv);
  MassOperator<double, 3> mass;
  mass.reinit(s.mf, 0, 0);
  mass.vmult(Mu, udiv);
  EXPECT_GT(Pu.dot(udiv), Mu.dot(udiv) * 1.0001);
}
