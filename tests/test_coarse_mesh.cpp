#include <gtest/gtest.h>

#include "mesh/generators.h"

using namespace dgflow;

TEST(FaceVertices, MatchesLexicographicConvention)
{
  // face 0: x=0, tangential (y,z): vertices (0,0,0),(0,1,0),(0,0,1),(0,1,1)
  const auto f0 = face_vertices(0);
  EXPECT_EQ(f0[0], 0u);
  EXPECT_EQ(f0[1], 2u);
  EXPECT_EQ(f0[2], 4u);
  EXPECT_EQ(f0[3], 6u);
  // face 5: z=1, tangential (x,y): vertices 4,5,6,7
  const auto f5 = face_vertices(5);
  EXPECT_EQ(f5[0], 4u);
  EXPECT_EQ(f5[1], 5u);
  EXPECT_EQ(f5[2], 6u);
  EXPECT_EQ(f5[3], 7u);
}

TEST(QuadOrientation, DetectsAllEightOrientations)
{
  const std::array<index_t, 4> va = {{10, 11, 12, 13}};
  for (unsigned int o = 0; o < 8; ++o)
  {
    // construct vb such that vb[idx(o(u,v))] = va[idx(u,v)]
    std::array<index_t, 4> vb{};
    for (unsigned int v = 0; v < 4; ++v)
    {
      const auto [up, wp] = orient_face_coords(o, v & 1, v >> 1, 2);
      vb[wp * 2 + up] = va[v];
    }
    EXPECT_EQ(quad_orientation(va, vb), o);
  }
}

TEST(QuadOrientation, InverseComposesToIdentity)
{
  for (unsigned int o = 0; o < 8; ++o)
  {
    const unsigned int oi = inverse_orientation(o);
    for (unsigned int n : {2u, 3u, 5u})
      for (unsigned int i0 = 0; i0 < n; ++i0)
        for (unsigned int i1 = 0; i1 < n; ++i1)
        {
          const auto [a, b] = orient_face_coords(o, i0, i1, n);
          const auto [c, d] = orient_face_coords(oi, a, b, n);
          EXPECT_EQ(c, i0);
          EXPECT_EQ(d, i1);
        }
  }
}

TEST(CoarseMeshConnectivity, SubdividedBoxNeighborsAreSymmetric)
{
  CoarseMesh mesh = subdivided_box(Point(0, 0, 0), Point(3, 2, 1), {{3, 2, 1}});
  mesh.compute_connectivity();
  ASSERT_EQ(mesh.n_cells(), 6u);

  unsigned int n_interior = 0, n_boundary = 0;
  for (index_t c = 0; c < mesh.n_cells(); ++c)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const auto &nb = mesh.neighbors[c][f];
      if (nb.cell == invalid_index)
      {
        ++n_boundary;
        EXPECT_NE(mesh.boundary_ids[c][f], interior_face_id);
      }
      else
      {
        ++n_interior;
        // symmetric: my neighbor's neighbor through its face is me
        const auto &back = mesh.neighbors[nb.cell][nb.face_no];
        EXPECT_EQ(back.cell, c);
        EXPECT_EQ(back.face_no, f);
        // axis-aligned boxes share orientation 0 and opposite faces
        EXPECT_EQ(nb.orientation, 0);
        EXPECT_EQ(nb.face_no, f % 2 == 0 ? f + 1 : f - 1);
        EXPECT_EQ(mesh.boundary_ids[c][f], interior_face_id);
      }
    }
  // 3x2x1 box: 22 boundary faces, 7 interior faces counted twice
  EXPECT_EQ(n_boundary, 22u);
  EXPECT_EQ(n_interior, 14u);
}

TEST(CoarseMeshConnectivity, ColorizedBoundaryIds)
{
  CoarseMesh mesh = subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}});
  mesh.compute_connectivity();
  // cell 0 is at the lower corner: faces 0,2,4 are boundaries with their ids
  EXPECT_EQ(mesh.boundary_ids[0][0], 0u);
  EXPECT_EQ(mesh.boundary_ids[0][2], 2u);
  EXPECT_EQ(mesh.boundary_ids[0][4], 4u);
  EXPECT_EQ(mesh.boundary_ids[0][1], interior_face_id);
}

TEST(CoarseMeshConnectivity, RotatedNeighborOrientation)
{
  // cube A: [0,1]^3 standard; cube B: [1,2]x[0,1]x[0,1] with local axes
  // e_x = -global z, e_y = global y, e_z = global x (right-handed)
  std::vector<Point> vertices;
  for (unsigned int v = 0; v < 8; ++v)
    vertices.push_back(Point(v & 1, (v >> 1) & 1, (v >> 2) & 1));
  std::vector<index_t> bvid(8);
  auto add_vertex = [&](const Point &p) {
    for (index_t i = 0; i < vertices.size(); ++i)
      if (norm(vertices[i] - p) < 1e-12)
        return i;
    vertices.push_back(p);
    return index_t(vertices.size() - 1);
  };
  for (unsigned int v = 0; v < 8; ++v)
  {
    const double a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    bvid[v] = add_vertex(Point(1 + c, b, 1 - a));
  }
  std::vector<std::array<index_t, 8>> cells(2);
  for (unsigned int v = 0; v < 8; ++v)
  {
    cells[0][v] = v;
    cells[1][v] = bvid[v];
  }
  CoarseMesh mesh = from_lists(std::move(vertices), std::move(cells));
  mesh.compute_connectivity();

  // A's +x face borders B's -z face with a non-identity orientation
  const auto &nb = mesh.neighbors[0][1];
  ASSERT_EQ(nb.cell, 1u);
  EXPECT_EQ(nb.face_no, 4);
  EXPECT_NE(nb.orientation, 0);
  const auto &back = mesh.neighbors[1][4];
  EXPECT_EQ(back.cell, 0u);
  EXPECT_EQ(back.face_no, 1);
  EXPECT_EQ(back.orientation, inverse_orientation(nb.orientation));
}

TEST(CoarseMeshConnectivity, RejectsNonManifold)
{
  // three cells sharing one face
  std::vector<Point> v;
  for (unsigned int i = 0; i < 8; ++i)
    v.push_back(Point(i & 1, (i >> 1) & 1, (i >> 2) & 1));
  // extra vertices for two more cells on the +x side
  v.push_back(Point(2, 0, 0)); // 8
  v.push_back(Point(2, 1, 0)); // 9
  v.push_back(Point(2, 0, 1)); // 10
  v.push_back(Point(2, 1, 1)); // 11
  v.push_back(Point(3, 0, 0)); // 12
  v.push_back(Point(3, 1, 0)); // 13
  v.push_back(Point(3, 0, 1)); // 14
  v.push_back(Point(3, 1, 1)); // 15
  std::vector<std::array<index_t, 8>> cells;
  cells.push_back({0, 1, 2, 3, 4, 5, 6, 7});
  cells.push_back({1, 8, 3, 9, 5, 10, 7, 11});
  cells.push_back({1, 12, 3, 13, 5, 14, 7, 15}); // shares face {1,3,5,7} again
  CoarseMesh mesh = from_lists(std::move(v), std::move(cells));
  EXPECT_THROW(mesh.compute_connectivity(), std::runtime_error);
}

TEST(CoarseMeshConnectivity, RejectsLeftHandedCell)
{
  std::vector<Point> v;
  for (unsigned int i = 0; i < 8; ++i)
    v.push_back(Point(i & 1, (i >> 1) & 1, (i >> 2) & 1));
  // swap two vertex layers to make the cell left-handed
  std::vector<std::array<index_t, 8>> cells;
  cells.push_back({4, 5, 6, 7, 0, 1, 2, 3});
  CoarseMesh mesh = from_lists(std::move(v), std::move(cells));
  EXPECT_THROW(mesh.compute_connectivity(), std::runtime_error);
}
