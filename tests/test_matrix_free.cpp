#include <gtest/gtest.h>

#include <cmath>

#include "matrixfree/fe_evaluation.h"
#include "matrixfree/fe_face_evaluation.h"
#include "matrixfree/field_tools.h"
#include "mesh/generators.h"

using namespace dgflow;

namespace
{
/// Two unit cubes where the second tree's axes are rotated (non-identity
/// face orientation between trees).
CoarseMesh rotated_two_cubes()
{
  std::vector<Point> vertices;
  for (unsigned int v = 0; v < 8; ++v)
    vertices.push_back(Point(v & 1, (v >> 1) & 1, (v >> 2) & 1));
  auto add_vertex = [&](const Point &p) {
    for (index_t i = 0; i < vertices.size(); ++i)
      if (norm(vertices[i] - p) < 1e-12)
        return i;
    vertices.push_back(p);
    return index_t(vertices.size() - 1);
  };
  std::vector<std::array<index_t, 8>> cells(2);
  for (unsigned int v = 0; v < 8; ++v)
  {
    const double a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    cells[0][v] = v;
    cells[1][v] = add_vertex(Point(1 + c, b, 1 - a));
  }
  return from_lists(std::move(vertices), std::move(cells));
}

template <typename Number>
void setup(MatrixFree<Number> &mf, const Mesh &mesh, const Geometry &geom,
           const unsigned int degree)
{
  typename MatrixFree<Number>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  mf.reinit(mesh, geom, data);
}

/// Checks that the two sides of every interior face observe identical values
/// and gradients when the global field is linear (exact in any space).
template <typename Number>
void check_face_consistency(const MatrixFree<Number> &mf,
                            const Vector<Number> &vec, const double tol)
{
  FEFaceEvaluation<Number, 1> phi_m(mf, 0, 0, true);
  FEFaceEvaluation<Number, 1> phi_p(mf, 0, 0, false);
  for (unsigned int b = 0; b < mf.n_inner_face_batches(); ++b)
  {
    phi_m.reinit(b);
    phi_p.reinit(b);
    phi_m.read_dof_values(vec);
    phi_p.read_dof_values(vec);
    phi_m.evaluate(true, true);
    phi_p.evaluate(true, true);
    for (unsigned int q = 0; q < phi_m.n_q_points; ++q)
    {
      const auto vm = phi_m.get_value(q), vp = phi_p.get_value(q);
      const auto gm = phi_m.get_gradient(q), gp = phi_p.get_gradient(q);
      const auto nm = phi_m.get_normal_vector(q),
                 np = phi_p.get_normal_vector(q);
      for (unsigned int l = 0; l < phi_m.n_filled_lanes(); ++l)
      {
        ASSERT_NEAR(vm[l], vp[l], tol)
          << "value jump at face batch " << b << " q " << q << " lane " << l;
        for (unsigned int d = 0; d < dim; ++d)
        {
          ASSERT_NEAR(gm[d][l], gp[d][l], 20 * tol)
            << "gradient jump at face batch " << b;
          ASSERT_NEAR(nm[d][l], -np[d][l], 1e-12);
        }
      }
    }
  }
}
} // namespace

class MatrixFreeDegree : public ::testing::TestWithParam<unsigned int>
{};

TEST_P(MatrixFreeDegree, InterpolationIsExactForLinears)
{
  const unsigned int k = GetParam();
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}}));
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, k);

  const auto f = [](const Point &p) {
    return 2.0 * p[0] - 0.5 * p[1] + 0.25 * p[2] + 1.0;
  };
  Vector<double> vec;
  interpolate(mf, 0, 0, f, vec);
  EXPECT_NEAR(l2_error(mf, 0, 0, vec, f), 0., 1e-12);
}

TEST_P(MatrixFreeDegree, CellGradientsOfLinearFieldAreExact)
{
  const unsigned int k = GetParam();
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}}));
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, k);

  Vector<double> vec;
  interpolate(
    mf, 0, 0,
    [](const Point &p) { return 3.0 * p[0] - 2.0 * p[1] + 0.5 * p[2]; }, vec);

  FEEvaluation<double, 1> phi(mf, 0, 0);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    phi.read_dof_values(vec);
    phi.evaluate(true, true);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto g = phi.get_gradient(q);
      for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
      {
        EXPECT_NEAR(g[0][l], 3.0, 1e-11);
        EXPECT_NEAR(g[1][l], -2.0, 1e-11);
        EXPECT_NEAR(g[2][l], 0.5, 1e-11);
      }
    }
  }
}

TEST_P(MatrixFreeDegree, FaceTracesMatchAcrossUniformMesh)
{
  const unsigned int k = GetParam();
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}}));
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, k);

  Vector<double> vec;
  interpolate(
    mf, 0, 0,
    [](const Point &p) { return 1.0 + p[0] - 2.0 * p[1] + 0.3 * p[2]; }, vec);
  check_face_consistency(mf, vec, 1e-11);
}

TEST_P(MatrixFreeDegree, FaceTracesMatchAcrossRotatedTrees)
{
  const unsigned int k = GetParam();
  Mesh mesh(rotated_two_cubes());
  mesh.refine_uniform(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, k);

  Vector<double> vec;
  interpolate(
    mf, 0, 0,
    [](const Point &p) { return 0.7 * p[0] + 1.3 * p[1] - 0.9 * p[2]; }, vec);
  check_face_consistency(mf, vec, 1e-11);
}

TEST_P(MatrixFreeDegree, FaceTracesMatchAcrossHangingFaces)
{
  const unsigned int k = GetParam();
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  flags[7] = true;
  mesh.refine(flags);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, k);

  Vector<double> vec;
  interpolate(
    mf, 0, 0,
    [](const Point &p) { return -1.0 + 2.0 * p[0] + p[1] + 0.5 * p[2]; },
    vec);
  check_face_consistency(mf, vec, 1e-11);
}

TEST_P(MatrixFreeDegree, FaceTracesMatchOnHangingRotatedTrees)
{
  const unsigned int k = GetParam();
  Mesh mesh(rotated_two_cubes());
  std::vector<bool> flags = {true, false};
  mesh.refine(flags);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, k);

  Vector<double> vec;
  interpolate(
    mf, 0, 0,
    [](const Point &p) { return 0.4 * p[0] - 0.8 * p[1] + 1.1 * p[2]; }, vec);
  check_face_consistency(mf, vec, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Degrees, MatrixFreeDegree,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(MatrixFreeGeometry, VolumesOfAffineMeshes)
{
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(2, 1, 0.5), {{2, 3, 1}}));
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);
  EXPECT_NEAR(domain_volume(mf), 1.0, 1e-12);
}

TEST(MatrixFreeGeometry, DivergenceTheoremOnDeformedMesh)
{
  // smoothly deformed cube: sum over boundary faces of x.n dS == 3 * volume
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.08 * std::sin(2 * M_PI * p[1]) * p[0] * (1 - p[0]),
                 p[1] - 0.06 * std::sin(2 * M_PI * p[2]),
                 p[2] + 0.05 * std::cos(2 * M_PI * p[0]) * p[2] * (1 - p[2]));
  });
  MatrixFree<double> mf;
  typename MatrixFree<double>::AdditionalData data;
  data.degrees = {3};
  data.n_q_points_1d = {4};
  data.geometry_degree = 4;
  mf.reinit(mesh, geom, data);

  const double volume = domain_volume(mf);
  double surface_integral = 0;
  const auto &metric = mf.face_metric(0);
  for (unsigned int b = mf.n_inner_face_batches(); b < mf.n_face_batches();
       ++b)
  {
    const auto &batch = mf.face_batch(b);
    for (unsigned int q = 0; q < metric.n_q; ++q)
    {
      const std::size_t idx = std::size_t(b) * metric.n_q + q;
      const Tensor1<VectorizedArray<double>> normal = metric.normal_at(b, q);
      const VectorizedArray<double> jxw = metric.jxw(b, q);
      for (unsigned int l = 0; l < batch.n_filled; ++l)
      {
        double xn = 0;
        for (unsigned int d = 0; d < dim; ++d)
          xn += metric.q_points[idx][d][l] * normal[d][l];
        surface_integral += xn * jxw[l];
      }
    }
  }
  EXPECT_NEAR(surface_integral, 3 * volume, 1e-6);
}

TEST(MatrixFreeGeometry, HangingFaceAreasAreConsistent)
{
  // areas of the four subfaces must sum to the coarse face area
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  mesh.refine(flags);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);

  const auto &metric = mf.face_metric(0);
  double hanging_area = 0;
  for (unsigned int b = 0; b < mf.n_inner_face_batches(); ++b)
  {
    const auto &batch = mf.face_batch(b);
    if (!batch.is_hanging())
      continue;
    for (unsigned int q = 0; q < metric.n_q; ++q)
      for (unsigned int l = 0; l < batch.n_filled; ++l)
        hanging_area += metric.jxw(b, q)[l];
  }
  // 12 hanging subfaces of area (1/4)^2 each
  EXPECT_NEAR(hanging_area, 12. / 16., 1e-12);
}

TEST(MatrixFreeOperations, MassWithCollocationIsDiagonal)
{
  // integrating u against test functions on the collocated Gauss lattice
  // equals pointwise JxW scaling
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}}));
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 3);

  Vector<double> u, mass_u;
  interpolate(
    mf, 0, 0, [](const Point &p) { return std::sin(p[0]) + p[1] * p[2]; }, u);
  mass_u.reinit(u.size());

  FEEvaluation<double, 1> phi(mf, 0, 0);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    phi.read_dof_values(u);
    phi.evaluate(true, false);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
      phi.submit_value(phi.get_value(q), q);
    phi.integrate(true, false);
    phi.distribute_local_to_global(mass_u);
  }
  // check against diagonal application
  const auto &metric = mf.cell_metric(0);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    const auto &batch = mf.cell_batch(b);
    for (unsigned int q = 0; q < metric.n_q; ++q)
      for (unsigned int l = 0; l < batch.n_filled; ++l)
      {
        const std::size_t dof =
          std::size_t(batch.cells[l]) * metric.n_q + q;
        const double expected = u[dof] * metric.jxw(b, q)[l];
        EXPECT_NEAR(mass_u[dof], expected, 1e-13);
      }
  }
}

TEST(MatrixFreeOperations, CellIntegrationAdjointness)
{
  // <A u, v> with A = "mass" must be symmetric: evaluate/integrate are
  // adjoint
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.1 * p[1] * p[2], p[1], p[2] + 0.05 * p[0]);
  });
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);

  Vector<double> u, v, Au, Av;
  interpolate(mf, 0, 0, [](const Point &p) { return p[0] * p[0] + p[1]; }, u);
  interpolate(mf, 0, 0, [](const Point &p) { return p[2] - 0.5 * p[0]; }, v);
  Au.reinit(u.size());
  Av.reinit(u.size());

  auto apply_mass = [&](const Vector<double> &src, Vector<double> &dst) {
    FEEvaluation<double, 1> phi(mf, 0, 0);
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      phi.read_dof_values(src);
      phi.evaluate(true, false);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
        phi.submit_value(phi.get_value(q), q);
      phi.integrate(true, false);
      phi.distribute_local_to_global(dst);
    }
  };
  apply_mass(u, Au);
  apply_mass(v, Av);
  EXPECT_NEAR(Au.dot(v), Av.dot(u), 1e-12 * std::abs(Au.dot(v)));
}

TEST(MatrixFreeDiagnostics, FaceLaneFillFraction)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);
  const double fill = mf.face_lane_fill_fraction();
  EXPECT_GT(fill, 0.5);
  EXPECT_LE(fill, 1.0);
}

TEST(MatrixFreeReinit, CellWidthsRefreshOnReReinit)
{
  // regression: cell_width_ was resized (not reassigned) on reinit, so a
  // second reinit with the same batch count kept stale minima from the
  // previous geometry
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);
  const unsigned int n_batches_first = mf.n_cell_batches();
  EXPECT_NEAR(double(mf.cell_width()[0][0]), 0.5, 1e-12);

  // same cell count, cells twice as large: every stored width must grow
  Mesh mesh2(subdivided_box(Point(0, 0, 0), Point(2, 2, 2), {{2, 2, 2}}));
  TrilinearGeometry geom2(mesh2.coarse());
  setup(mf, mesh2, geom2, 2);
  ASSERT_EQ(mf.n_cell_batches(), n_batches_first);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    for (unsigned int l = 0; l < mf.cell_batch(b).n_filled; ++l)
      EXPECT_NEAR(double(mf.cell_width()[b][l]), 1.0, 1e-12)
        << "batch " << b << " lane " << l;
}

TEST(MatrixFreeCompression, ClassifiesAndCompressesCartesianMesh)
{
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 2, 2}}));
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);

  for (index_t c = 0; c < mf.n_cells(); ++c)
    EXPECT_EQ(mf.cell_geometry_type(c), GeometryType::cartesian);
  EXPECT_LT(mf.metric_compression_ratio(), 0.2);
  EXPECT_LT(mf.metric_bytes_stored(), mf.metric_bytes_full());

  // compression off: everything stored per-q
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  data.compress_geometry = false;
  MatrixFree<double> mf_full;
  mf_full.reinit(mesh, geom, data);
  EXPECT_EQ(mf_full.cell_geometry_type(0), GeometryType::general);
  EXPECT_NEAR(mf_full.metric_compression_ratio(), 1.0, 1e-12);
}

TEST(MatrixFreeCompression, DeformedMeshStaysGeneral)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.05 * p[1] * p[2], p[1], p[2] + 0.04 * p[0] * p[1]);
  });
  MatrixFree<double> mf;
  setup(mf, mesh, geom, 2);
  for (index_t c = 0; c < mf.n_cells(); ++c)
    EXPECT_EQ(mf.cell_geometry_type(c), GeometryType::general);
  EXPECT_NEAR(mf.metric_compression_ratio(), 1.0, 1e-12);
  EXPECT_GT(mf.estimated_vmult_bytes_per_dof(0, 0), 0.);
}
