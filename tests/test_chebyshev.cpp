#include <gtest/gtest.h>

#include <random>

#include "solvers/chebyshev.h"

using namespace dgflow;

namespace
{
/// Simple SPD test operator: diagonal matrix with spectrum [1, lambda_max].
struct DiagOp
{
  Vector<double> d;
  void vmult(Vector<double> &dst, const Vector<double> &src) const
  {
    dst = src;
    dst.scale_pointwise(d);
  }
};
} // namespace

TEST(ChebyshevSmootherTest, EstimatesLargestEigenvalue)
{
  DiagOp A;
  const std::size_t n = 200;
  A.d.reinit(n);
  for (std::size_t i = 0; i < n; ++i)
    A.d[i] = 1. + 99. * double(i) / (n - 1); // spectrum [1, 100]
  Vector<double> diag(n);
  diag = 1.; // Jacobi = identity here
  ChebyshevSmoother<DiagOp, Vector<double>> smoother;
  smoother.reinit(A, diag);
  // estimate includes the 1.2 safety factor
  EXPECT_GT(smoother.max_eigenvalue(), 95.);
  EXPECT_LT(smoother.max_eigenvalue(), 130.);
}

TEST(ChebyshevSmootherTest, DampsHighFrequenciesStrongly)
{
  DiagOp A;
  const std::size_t n = 256;
  A.d.reinit(n);
  for (std::size_t i = 0; i < n; ++i)
    A.d[i] = 1. + 999. * double(i) / (n - 1);
  Vector<double> diag(n);
  diag = 1.;
  ChebyshevSmoother<DiagOp, Vector<double>> smoother;
  smoother.reinit(A, diag);

  // solve A x = 0 from a random guess: "high" eigencomponents (upper part
  // of the spectrum) must shrink strongly within one sweep
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1., 1.);
  Vector<double> x(n), b(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = dist(rng);
  Vector<double> x0 = x;
  smoother.smooth(x, b, false);
  double high_before = 0, high_after = 0;
  for (std::size_t i = n / 2; i < n; ++i)
  {
    high_before += x0[i] * x0[i];
    high_after += x[i] * x[i];
  }
  // one degree-3 sweep bounds the error polynomial by 1/T_3(sigma) ~ 0.48
  // uniformly over the smoothing band; averaged over many eigencomponents
  // the damping is considerably stronger
  EXPECT_LT(high_after, 0.3 * high_before);
}

TEST(ChebyshevSmootherTest, ActsAsConvergentIterationOnSPD)
{
  DiagOp A;
  const std::size_t n = 64;
  A.d.reinit(n);
  for (std::size_t i = 0; i < n; ++i)
    A.d[i] = 2. + double(i % 13);
  Vector<double> diag = A.d;
  ChebyshevSmoother<DiagOp, Vector<double>> smoother;
  smoother.reinit(A, diag);

  Vector<double> b(n), x(n), r(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::sin(0.7 * i);
  double prev = 1e300;
  for (int sweep = 0; sweep < 10; ++sweep)
  {
    smoother.smooth(x, b, sweep == 0);
    A.vmult(r, x);
    r.sadd(-1., 1., b);
    const double res = double(r.l2_norm());
    EXPECT_LT(res, prev);
    prev = res;
  }
  // convergence factor per sweep is bounded by ~0.48 (degree 3, range 20)
  EXPECT_LT(prev, 1e-2 * double(b.l2_norm()));
}

TEST(ChebyshevSmootherTest, VmultIsLinearInSource)
{
  DiagOp A;
  const std::size_t n = 32;
  A.d.reinit(n);
  for (std::size_t i = 0; i < n; ++i)
    A.d[i] = 1. + double(i);
  Vector<double> diag = A.d;
  ChebyshevSmoother<DiagOp, Vector<double>> smoother;
  smoother.reinit(A, diag);

  Vector<double> b1(n), b2(n), y1, y2, ysum, bsum(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    b1[i] = std::cos(0.3 * i);
    b2[i] = double(i % 5) - 2.;
    bsum[i] = b1[i] + 2. * b2[i];
  }
  y1.reinit(n);
  y2.reinit(n);
  ysum.reinit(n);
  smoother.vmult(y1, b1);
  smoother.vmult(y2, b2);
  smoother.vmult(ysum, bsum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ysum[i], y1[i] + 2. * y2[i], 1e-11);
}
