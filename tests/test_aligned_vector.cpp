#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "common/aligned_vector.h"

using namespace dgflow;

TEST(AlignedVector, AlignmentIs64Bytes)
{
  AlignedVector<double> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  v.resize(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

TEST(AlignedVector, ResizePreservesAndInitializes)
{
  AlignedVector<int> v(3, 7);
  EXPECT_EQ(v.size(), 3u);
  for (const int x : v)
    EXPECT_EQ(x, 7);
  v.resize(6, 9);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[2], 7);
  EXPECT_EQ(v[3], 9);
  EXPECT_EQ(v[5], 9);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 7);
}

TEST(AlignedVector, PushBackGrows)
{
  AlignedVector<double> v;
  for (int i = 0; i < 1000; ++i)
    v.push_back(i * 0.5);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(v[i], i * 0.5);
}

TEST(AlignedVector, CopyAndMove)
{
  AlignedVector<double> a(10);
  std::iota(a.begin(), a.end(), 0.);
  AlignedVector<double> b(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[7], 7.);
  AlignedVector<double> c(std::move(b));
  EXPECT_EQ(c[7], 7.);
  EXPECT_EQ(b.size(), 0u); // NOLINT: moved-from is well-defined empty here
  b = a;
  a.fill(-1.);
  EXPECT_EQ(b[3], 3.);
  c = std::move(b);
  EXPECT_EQ(c[3], 3.);
}

TEST(AlignedVector, FillAndClear)
{
  AlignedVector<float> v(17);
  v.fill(2.5f);
  for (const float x : v)
    EXPECT_EQ(x, 2.5f);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.memory_consumption(), 0u);
}
