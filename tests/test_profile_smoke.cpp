// End-to-end profiling smoke check: runs the quickstart example with
// DGFLOW_PROFILE=1 and verifies that the archived JSON report parses, shows a
// deep timer hierarchy with nonzero timings, and carries the solver counters.
// The quickstart binary path is injected by CMake via DGFLOW_QUICKSTART_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "instrumentation/report.h"

using namespace dgflow;

namespace
{
std::string slurp(const std::string &path)
{
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
} // namespace

TEST(ProfileSmoke, QuickstartEmitsValidProfileJson)
{
#ifndef DGFLOW_PROFILE
  GTEST_SKIP() << "built without DGFLOW_PROFILE";
#else
  const std::string json_path = "profile_smoke.json";
  const std::string stdout_path = "profile_smoke_stdout.txt";
  std::remove(json_path.c_str());

  const std::string cmd = "env DGFLOW_PROFILE=1 DGFLOW_PROFILE_JSON=" +
                          json_path + " " DGFLOW_QUICKSTART_PATH " 2 2 > " +
                          stdout_path + " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(stdout_path);

  // the console table was printed alongside the JSON archive
  const std::string console = slurp(stdout_path);
  EXPECT_NE(console.find("profile: scoped timers"), std::string::npos);
  EXPECT_NE(console.find("profile: counters"), std::string::npos);

  const std::string text = slurp(json_path);
  ASSERT_FALSE(text.empty()) << "quickstart did not write " << json_path;
  const prof::ProfileReport report = prof::ProfileReport::parse_json(text);

  // the hierarchy resolves cg -> mg_vcycle -> levels -> smoother
  EXPECT_GE(report.depth(), 4u);
  ASSERT_FALSE(report.timers.empty());
  const auto *cg = report.find("cg");
  ASSERT_NE(cg, nullptr);
  EXPECT_GT(cg->count, 0ul);
  EXPECT_GT(cg->total, 0.);
  const auto *vcycle = report.find("cg/mg_vcycle");
  ASSERT_NE(vcycle, nullptr);
  EXPECT_GT(vcycle->count, 0ul);
  EXPECT_GT(vcycle->total, 0.);
  EXPECT_LE(vcycle->total, cg->total);

  // solver + matrix-free counters are populated
  EXPECT_GT(report.counters.at("cg_iterations"), 0ll);
  EXPECT_GT(report.counters.at("mf_cell_batches"), 0ll);
  EXPECT_GT(report.counters.at("mf_dofs"), 0ll);

  // roofline counters from MatrixFree::reinit (the quickstart mesh is
  // deformed, so the metric stays uncompressed - assert presence and sane
  // ranges, not a ratio below 1)
  EXPECT_GT(report.counters.at("mf_metric_bytes_stored"), 0ll);
  EXPECT_GE(report.counters.at("mf_metric_bytes_full"),
            report.counters.at("mf_metric_bytes_stored"));

  // gauges: compression ratio, face lane fill, and per-operator throughput
  EXPECT_GT(report.gauges.at("mf_metric_compression"), 0.);
  EXPECT_LE(report.gauges.at("mf_metric_compression"), 1.0 + 1e-12);
  EXPECT_GT(report.gauges.at("mf_face_lane_fill"), 0.);
  EXPECT_LE(report.gauges.at("mf_face_lane_fill"), 1.0 + 1e-12);
  EXPECT_GT(report.gauges.at("laplace_dofs_per_s"), 0.);
  EXPECT_GT(report.gauges.at("laplace_bytes_per_dof"), 0.);
  EXPECT_NE(console.find("profile: gauges"), std::string::npos);

  std::remove(json_path.c_str());
  std::remove(stdout_path.c_str());
#endif
}
