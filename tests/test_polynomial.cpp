#include <gtest/gtest.h>

#include <cmath>

#include "fem/polynomial.h"
#include "fem/quadrature.h"

using namespace dgflow;

class LagrangeBasisTest : public ::testing::TestWithParam<unsigned int>
{
protected:
  LagrangeBasis make_basis() const
  {
    return LagrangeBasis(gauss_quadrature(GetParam() + 1).points);
  }
};

TEST_P(LagrangeBasisTest, NodalProperty)
{
  const LagrangeBasis b = make_basis();
  for (unsigned int i = 0; i < b.size(); ++i)
    for (unsigned int j = 0; j < b.size(); ++j)
      EXPECT_NEAR(b.value(i, b.nodes()[j]), i == j ? 1. : 0., 1e-12);
}

TEST_P(LagrangeBasisTest, PartitionOfUnity)
{
  const LagrangeBasis b = make_basis();
  for (const double x : {0., 0.17, 0.5, 0.83, 1.})
  {
    double sum_v = 0, sum_d = 0;
    for (unsigned int i = 0; i < b.size(); ++i)
    {
      sum_v += b.value(i, x);
      sum_d += b.derivative(i, x);
    }
    EXPECT_NEAR(sum_v, 1., 1e-11);
    EXPECT_NEAR(sum_d, 0., 1e-10);
  }
}

TEST_P(LagrangeBasisTest, ReproducesPolynomialsUpToDegree)
{
  const unsigned int k = GetParam();
  const LagrangeBasis b = make_basis();
  // interpolate f(x) = x^k and check at off-node points
  for (const double x : {0.08, 0.33, 0.77})
  {
    double interp = 0, dinterp = 0;
    for (unsigned int i = 0; i < b.size(); ++i)
    {
      const double fi = std::pow(b.nodes()[i], double(k));
      interp += fi * b.value(i, x);
      dinterp += fi * b.derivative(i, x);
    }
    EXPECT_NEAR(interp, std::pow(x, double(k)), 1e-11);
    const double dexact = k == 0 ? 0. : k * std::pow(x, double(k - 1));
    EXPECT_NEAR(dinterp, dexact, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, LagrangeBasisTest, ::testing::Range(0u, 9u));
