#include <gtest/gtest.h>

#include <random>

#include "dof/dof_handler.h"
#include "mesh/generators.h"
#include "matrixfree/fe_evaluation.h"
#include "multigrid/transfer.h"

using namespace dgflow;

namespace
{
Vector<float> random_vec(const std::size_t n, const unsigned int seed)
{
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  Vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = dist(rng);
  return v;
}

MatrixFree<float> make_mf(const Mesh &mesh, const Geometry &geom,
                          const std::vector<unsigned int> &degrees,
                          const std::vector<BasisType> &bases,
                          const std::vector<unsigned int> &quads)
{
  MatrixFree<float> mf;
  MatrixFree<float>::AdditionalData data;
  data.degrees = degrees;
  data.basis_types = bases;
  data.n_q_points_1d = quads;
  mf.reinit(mesh, geom, data);
  return mf;
}
} // namespace

TEST(DGPTransferTest, ProlongationPreservesCoarsePolynomials)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  const auto mf = make_mf(mesh, geom, {3, 1},
                          {BasisType::lagrange_gauss, BasisType::lagrange_gauss},
                          {4, 2});
  DGPTransfer<float> transfer(mf, 0, 1);

  // interpolate a tri-linear function on the coarse (k=1) space; its
  // prolongation to k=3 must represent the same function exactly
  Vector<float> coarse(mf.n_dofs(1, 1)), fine;
  const auto f = [](const Point &p) {
    return 1.0 + 2 * p[0] - p[1] + 0.5 * p[2];
  };
  {
    // nodal interpolation on the collocated coarse lattice
    FEEvaluation<float, 1> phi(mf, 1, 1);
    for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
    {
      phi.reinit(b);
      for (unsigned int q = 0; q < phi.n_q_points; ++q)
      {
        const auto xq = phi.quadrature_point(q);
        for (unsigned int l = 0; l < MatrixFree<float>::n_lanes; ++l)
          phi.begin_dof_values()[q][l] =
            float(f(Point(xq[0][l], xq[1][l], xq[2][l])));
      }
      phi.set_dof_values(coarse);
    }
  }
  transfer.prolongate(fine, coarse);
  // evaluate the fine field at its collocation points and compare
  FEEvaluation<float, 1> phi(mf, 0, 0);
  for (unsigned int b = 0; b < mf.n_cell_batches(); ++b)
  {
    phi.reinit(b);
    phi.read_dof_values(fine);
    for (unsigned int q = 0; q < phi.n_q_points; ++q)
    {
      const auto xq = phi.quadrature_point(q);
      for (unsigned int l = 0; l < phi.n_filled_lanes(); ++l)
        ASSERT_NEAR(phi.begin_dof_values()[q][l],
                    f(Point(xq[0][l], xq[1][l], xq[2][l])), 1e-5);
    }
  }
}

TEST(DGPTransferTest, RestrictionIsTransposeOfProlongation)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  const auto mf = make_mf(mesh, geom, {4, 2},
                          {BasisType::lagrange_gauss, BasisType::lagrange_gauss},
                          {5, 3});
  DGPTransfer<float> transfer(mf, 0, 1);

  const auto xc = random_vec(mf.n_dofs(1, 1), 1);
  const auto yf = random_vec(mf.n_dofs(0, 1), 2);
  Vector<float> Pxc, Rtyf;
  transfer.prolongate(Pxc, xc);
  transfer.restrict_down(Rtyf, yf);
  const double a = Pxc.dot(yf), b = Rtyf.dot(xc);
  EXPECT_NEAR(a, b, 1e-4 * std::abs(a));
}

TEST(CTransferTest, ProlongationOfConstantIsConstant)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  mesh.refine(flags); // include hanging constraints
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  // no Dirichlet so the constant is representable
  const CFESpace cfe = make_q1_space(dofs, [](unsigned int) { return false; });
  const SparseMatrix P = build_c_transfer(mesh, cfe);
  SparseTransfer<float> transfer(P);

  Vector<float> ones(cfe.n_dofs), dg;
  ones = 1.f;
  transfer.prolongate(dg, ones);
  ASSERT_EQ(dg.size(), 8u * mesh.n_active_cells());
  for (std::size_t i = 0; i < dg.size(); ++i)
    ASSERT_NEAR(dg[i], 1.f, 1e-6) << "dof " << i;
}

TEST(HTransferTest, ProlongationOfLinearFieldIsExact)
{
  Mesh fine(unit_cube());
  fine.refine_uniform(2);
  const Mesh coarse = fine.coarsened();
  ASSERT_EQ(coarse.n_active_cells(), 8u);

  CFEDofHandler fine_dofs, coarse_dofs;
  fine_dofs.reinit(fine);
  coarse_dofs.reinit(coarse);
  const auto no_dirichlet = [](unsigned int) { return false; };
  const CFESpace fine_space = make_q1_space(fine_dofs, no_dirichlet);
  const CFESpace coarse_space = make_q1_space(coarse_dofs, no_dirichlet);

  const SparseMatrix P =
    build_h_transfer(fine, fine_space, coarse, coarse_space);
  EXPECT_EQ(P.n_rows(), fine_space.n_dofs);
  EXPECT_EQ(P.n_cols(), coarse_space.n_dofs);

  // a constant is reproduced exactly (row sums 1)
  Vector<double> ones(coarse_space.n_dofs), fine_vals;
  ones = 1.;
  P.vmult(fine_vals, ones);
  for (std::size_t i = 0; i < fine_vals.size(); ++i)
    ASSERT_NEAR(fine_vals[i], 1., 1e-12);
}

TEST(HTransferTest, WorksOnAdaptiveMeshes)
{
  Mesh fine(unit_cube());
  fine.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  fine.refine(flags);
  const Mesh coarse = fine.coarsened();
  EXPECT_LT(coarse.n_active_cells(), fine.n_active_cells());

  CFEDofHandler fine_dofs, coarse_dofs;
  fine_dofs.reinit(fine);
  coarse_dofs.reinit(coarse);
  const auto no_dirichlet = [](unsigned int) { return false; };
  const CFESpace fine_space = make_q1_space(fine_dofs, no_dirichlet);
  const CFESpace coarse_space = make_q1_space(coarse_dofs, no_dirichlet);
  const SparseMatrix P =
    build_h_transfer(fine, fine_space, coarse, coarse_space);

  Vector<double> ones(coarse_space.n_dofs), fine_vals;
  ones = 1.;
  P.vmult(fine_vals, ones);
  for (std::size_t i = 0; i < fine_vals.size(); ++i)
    ASSERT_NEAR(fine_vals[i], 1., 1e-12);
}

TEST(MeshCoarsening, GlobalCoarseningHalvesEachDirection)
{
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 1, 1}}));
  mesh.refine_uniform(2);
  EXPECT_EQ(mesh.n_active_cells(), 128u);
  const Mesh c1 = mesh.coarsened();
  EXPECT_EQ(c1.n_active_cells(), 16u);
  const Mesh c2 = c1.coarsened();
  EXPECT_EQ(c2.n_active_cells(), 2u);
  const Mesh c3 = c2.coarsened();
  EXPECT_EQ(c3.n_active_cells(), 2u); // coarse cells cannot merge
}
