// Algorithm-based fault tolerance (ctest label abft; also run under
// DGFLOW_SANITIZE=address and =undefined by run_benchmarks.sh): strict
// parsing of the fault-injection env knobs, deterministic compute-side
// bit-flip injection, checksummed setup artifacts (geometry batches, kernel
// dispatch tables, partitioner exchange lists, AMG level matrices) with
// scrub-and-rebuild, the CG residual-replay guard with snapshot rollback,
// the guarded V-cycle, the SDC-repair rung of the recovery ladder, and the
// end-to-end repair of mid-solve flips in every protected artifact class on
// four ranks.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

#include "common/env.h"
#include "fem/kernel_dispatch.h"
#include "mesh/generators.h"
#include "mesh/partition.h"
#include "multigrid/hybrid_multigrid.h"
#include "operators/laplace_operator.h"
#include "resilience/abft.h"
#include "resilience/distributed_recovery.h"
#include "resilience/fault_injection.h"
#include "solvers/cg.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

Mesh make_mesh(const unsigned int refinements)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(refinements);
  return mesh;
}

double exact_solution(const Point &p)
{
  return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
         std::sin(M_PI * p[2]);
}

double forcing(const Point &p) { return 3 * M_PI * M_PI * exact_solution(p); }

/// Sets an environment variable for the lifetime of one scope.
class ScopedEnv
{
public:
  ScopedEnv(const char *name, const char *value) : name_(name)
  {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

private:
  const char *name_;
};

bool bitwise_equal(const Vector<double> &a, const Vector<double> &b)
{
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}
} // namespace

// ---------------------------------------------------------------------------
// satellite: strict parsing of every DGFLOW_FAULT_* / DGFLOW_VMPI_TIMEOUT
// knob (the atof-silently-zero regression: a typo'd knob must fail fast
// naming the variable, not turn fault injection into a vacuous no-op)
// ---------------------------------------------------------------------------

namespace
{
void expect_env_rejects(const char *name, const char *value)
{
  ScopedEnv env(name, value);
  try
  {
    resilience::FaultPlan::config_from_env();
    FAIL() << name << "='" << value << "' was accepted";
  }
  catch (const EnvVarError &e)
  {
    EXPECT_NE(std::strstr(e.what(), name), nullptr)
      << "message does not name " << name << ": " << e.what();
  }
}
} // namespace

TEST(EnvHardening, MalformedFaultKnobsFailFastNamingTheVariable)
{
  for (const char *name :
       {"DGFLOW_FAULT_SEED", "DGFLOW_FAULT_DROP", "DGFLOW_FAULT_DELAY",
        "DGFLOW_FAULT_DELAY_MS", "DGFLOW_FAULT_REORDER",
        "DGFLOW_FAULT_CORRUPT", "DGFLOW_FAULT_CORRUPT_COLL",
        "DGFLOW_FAULT_STALL_RANK", "DGFLOW_FAULT_STALL_MS",
        "DGFLOW_FAULT_KILL_RANK", "DGFLOW_FAULT_KILL_STEP",
        "DGFLOW_FAULT_BITFLIP_STEP", "DGFLOW_FAULT_BITFLIP_RANK",
        "DGFLOW_FAULT_BITFLIP_BIT"})
  {
    expect_env_rejects(name, "banana");
    expect_env_rejects(name, "0.5x"); // trailing junk must not parse
  }
}

TEST(EnvHardening, OutOfRangeFaultKnobsFailFast)
{
  expect_env_rejects("DGFLOW_FAULT_SEED", "-4");
  expect_env_rejects("DGFLOW_FAULT_DROP", "1.5");
  expect_env_rejects("DGFLOW_FAULT_DROP", "-0.1");
  expect_env_rejects("DGFLOW_FAULT_DELAY", "2");
  expect_env_rejects("DGFLOW_FAULT_DELAY_MS", "-3");
  expect_env_rejects("DGFLOW_FAULT_REORDER", "-1");
  expect_env_rejects("DGFLOW_FAULT_CORRUPT", "nan");
  expect_env_rejects("DGFLOW_FAULT_CORRUPT_COLL", "1.01");
  expect_env_rejects("DGFLOW_FAULT_STALL_RANK", "-2");
  expect_env_rejects("DGFLOW_FAULT_STALL_MS", "-1");
  expect_env_rejects("DGFLOW_FAULT_KILL_RANK", "-5");
  expect_env_rejects("DGFLOW_FAULT_KILL_STEP", "-1");
  expect_env_rejects("DGFLOW_FAULT_BITFLIP_STEP", "-1");
  expect_env_rejects("DGFLOW_FAULT_BITFLIP_RANK", "-1");
  expect_env_rejects("DGFLOW_FAULT_BITFLIP_BIT", "-2");
}

TEST(EnvHardening, WellFormedKnobsRoundTrip)
{
  ScopedEnv seed("DGFLOW_FAULT_SEED", "42");
  ScopedEnv drop("DGFLOW_FAULT_DROP", "0.25");
  ScopedEnv delay("DGFLOW_FAULT_DELAY", "0.5");
  ScopedEnv delay_ms("DGFLOW_FAULT_DELAY_MS", "2");
  ScopedEnv reorder("DGFLOW_FAULT_REORDER", "0.1");
  ScopedEnv corrupt("DGFLOW_FAULT_CORRUPT", "0.01");
  ScopedEnv corrupt_coll("DGFLOW_FAULT_CORRUPT_COLL", "0.02");
  ScopedEnv stall_rank("DGFLOW_FAULT_STALL_RANK", "1");
  ScopedEnv stall_ms("DGFLOW_FAULT_STALL_MS", "3");
  ScopedEnv kill_rank("DGFLOW_FAULT_KILL_RANK", "2");
  ScopedEnv kill_step("DGFLOW_FAULT_KILL_STEP", "7");
  ScopedEnv bf_target("DGFLOW_FAULT_BITFLIP_TARGET", "krylov_r");
  ScopedEnv bf_step("DGFLOW_FAULT_BITFLIP_STEP", "9");
  ScopedEnv bf_rank("DGFLOW_FAULT_BITFLIP_RANK", "3");
  ScopedEnv bf_bit("DGFLOW_FAULT_BITFLIP_BIT", "17");

  const auto c = resilience::FaultPlan::config_from_env();
  EXPECT_EQ(c.seed, 42u);
  EXPECT_DOUBLE_EQ(c.drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(c.delay_rate, 0.5);
  EXPECT_DOUBLE_EQ(c.delay_seconds, 2e-3);
  EXPECT_DOUBLE_EQ(c.reorder_rate, 0.1);
  EXPECT_DOUBLE_EQ(c.corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(c.corrupt_collective_rate, 0.02);
  EXPECT_EQ(c.stall_rank, 1);
  EXPECT_DOUBLE_EQ(c.stall_seconds, 3e-3);
  EXPECT_EQ(c.kill_rank, 2);
  EXPECT_EQ(c.kill_step, 7u);
  EXPECT_EQ(c.bitflip_target, "krylov_r");
  EXPECT_EQ(c.bitflip_step, 9u);
  EXPECT_EQ(c.bitflip_rank, 3);
  EXPECT_EQ(c.bitflip_bit, 17);
}

TEST(EnvHardening, VmpiTimeoutRejectsMalformedAndAcceptsValid)
{
  {
    ScopedEnv env("DGFLOW_VMPI_TIMEOUT", "fast");
    EXPECT_THROW(vmpi::run(1, [](vmpi::Communicator &) {}), EnvVarError);
  }
  {
    ScopedEnv env("DGFLOW_VMPI_TIMEOUT", "-1");
    EXPECT_THROW(vmpi::run(1, [](vmpi::Communicator &) {}), EnvVarError);
  }
  {
    ScopedEnv env("DGFLOW_VMPI_TIMEOUT", "30");
    bool ran = false;
    vmpi::run(1, [&](vmpi::Communicator &) { ran = true; });
    EXPECT_TRUE(ran);
  }
}

// ---------------------------------------------------------------------------
// tentpole: deterministic compute-side bit-flip injection
// ---------------------------------------------------------------------------

TEST(BitflipInjection, FiresOnceAtTheConfiguredPointAndIsDeterministic)
{
  resilience::FaultPlan::Config cfg;
  cfg.seed = 7;
  cfg.bitflip_target = "krylov_r";
  cfg.bitflip_step = 5;
  cfg.bitflip_rank = 2;
  resilience::FaultPlan plan_a(cfg), plan_b(cfg);

  std::vector<double> buf_a(64), buf_b(64), clean(64);
  for (std::size_t i = 0; i < clean.size(); ++i)
    buf_a[i] = buf_b[i] = clean[i] = 0.5 * double(i) + 1.;
  const std::size_t bytes = clean.size() * sizeof(double);

  // wrong artifact / step / rank: no flip
  plan_a.inject("krylov_x", 5, 2, buf_a.data(), bytes);
  plan_a.inject("krylov_r", 4, 2, buf_a.data(), bytes);
  plan_a.inject("krylov_r", 5, 1, buf_a.data(), bytes);
  EXPECT_EQ(plan_a.counts().bitflips, 0u);
  EXPECT_EQ(std::memcmp(buf_a.data(), clean.data(), bytes), 0);

  // the configured point: exactly one bit in exactly one element
  plan_a.inject("krylov_r", 5, 2, buf_a.data(), bytes);
  EXPECT_EQ(plan_a.counts().bitflips, 1u);
  unsigned int changed = 0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    if (buf_a[i] != clean[i])
      ++changed;
  EXPECT_EQ(changed, 1u);

  // fires at most once, even if the solve revisits the step after rollback
  std::vector<double> after_first = buf_a;
  plan_a.inject("krylov_r", 5, 2, buf_a.data(), bytes);
  EXPECT_EQ(plan_a.counts().bitflips, 1u);
  EXPECT_EQ(std::memcmp(buf_a.data(), after_first.data(), bytes), 0);

  // an identically configured plan flips the identical bit
  plan_b.inject("krylov_r", 5, 2, buf_b.data(), bytes);
  EXPECT_EQ(std::memcmp(buf_a.data(), buf_b.data(), bytes), 0);
}

TEST(BitflipInjection, ExplicitBitIndexFlipsThatBit)
{
  resilience::FaultPlan::Config cfg;
  cfg.bitflip_target = "geometry";
  cfg.bitflip_step = 1;
  cfg.bitflip_bit = 12; // byte 1, bit 4
  resilience::FaultPlan plan(cfg);
  std::vector<unsigned char> buf(16, 0);
  plan.inject("geometry", 1, 0, buf.data(), buf.size());
  EXPECT_EQ(buf[1], 1u << 4);
  for (std::size_t i = 0; i < buf.size(); ++i)
    if (i != 1)
    {
      EXPECT_EQ(buf[i], 0u) << "stray flip at byte " << i;
    }
}

// ---------------------------------------------------------------------------
// tentpole: checksummed setup artifacts (ArtifactGuard + the per-subsystem
// registration helpers)
// ---------------------------------------------------------------------------

TEST(ArtifactGuard, DetectsACorruptedArtifactAndRebuildsItBitwise)
{
  std::vector<double> source(100), cache;
  for (std::size_t i = 0; i < source.size(); ++i)
    source[i] = std::sin(0.3 * double(i));
  cache = source;

  resilience::ArtifactGuard guard;
  guard.protect(
    "cache",
    [&]() {
      return std::vector<resilience::ArtifactGuard::Region>{
        {cache.data(), cache.size() * sizeof(double)}};
    },
    [&]() { cache = source; });
  EXPECT_EQ(guard.n_artifacts(), 1u);
  EXPECT_TRUE(guard.verify("cache"));
  EXPECT_EQ(guard.scrub(), 0u);

  reinterpret_cast<unsigned char *>(&cache[17])[3] ^= 0x10;
  EXPECT_FALSE(guard.verify("cache"));
  EXPECT_EQ(guard.scrub(), 1u);
  EXPECT_TRUE(guard.verify("cache"));
  EXPECT_EQ(std::memcmp(cache.data(), source.data(),
                        source.size() * sizeof(double)),
            0);
  EXPECT_EQ(guard.rebuilds(), 1u);
}

TEST(ArtifactGuard, RepresentationChangingRepairAdoptsTheNewBaseline)
{
  // a rebuild that cannot restore the exact bits (e.g. disabling a fast
  // path) must leave the guard consistent with the repaired representation
  std::vector<double> data(8, 1.0);
  resilience::ArtifactGuard guard;
  guard.protect(
    "mode",
    [&]() {
      return std::vector<resilience::ArtifactGuard::Region>{
        {data.data(), data.size() * sizeof(double)}};
    },
    [&]() { std::fill(data.begin(), data.end(), 2.0); });

  reinterpret_cast<unsigned char *>(data.data())[0] ^= 0x01;
  EXPECT_EQ(guard.scrub(), 1u);
  EXPECT_TRUE(guard.verify("mode"));
  EXPECT_EQ(data[0], 2.0);
  EXPECT_EQ(guard.scrub(), 0u);
}

TEST(ArtifactGuard, RebaselineAcceptsALegitimateMutation)
{
  std::vector<double> data(4, 3.0);
  resilience::ArtifactGuard guard;
  guard.protect(
    "data",
    [&]() {
      return std::vector<resilience::ArtifactGuard::Region>{
        {data.data(), data.size() * sizeof(double)}};
    },
    []() {});
  data[2] = 5.0; // deliberate update, not corruption
  EXPECT_FALSE(guard.verify("data"));
  guard.rebaseline("data");
  EXPECT_TRUE(guard.verify("data"));
  EXPECT_EQ(guard.scrub(), 0u);
}

TEST(ArtifactGuard, UnknownArtifactNameThrows)
{
  resilience::ArtifactGuard guard;
  EXPECT_THROW(guard.verify("no-such-artifact"), std::runtime_error);
  EXPECT_THROW(guard.rebaseline("no-such-artifact"), std::runtime_error);
}

TEST(ArtifactGuard, KernelDispatchTablesVerifyAndRouteAroundOnCorruption)
{
  ASSERT_TRUE(specialized_kernels_enabled());
  resilience::ArtifactGuard guard;
  resilience::protect_kernel_tables(guard);
  EXPECT_EQ(guard.scrub(), 0u);

  // code pointers cannot be rebuilt from primary data; the repair disables
  // the specialized fast path (generic kernels give the same results) and
  // the guard rebaselines onto the safe representation
  set_specialized_kernels_enabled(false);
  EXPECT_FALSE(guard.verify("kernel_dispatch_tables"));
  EXPECT_EQ(guard.scrub(), 1u);
  EXPECT_FALSE(specialized_kernels_enabled());
  EXPECT_TRUE(guard.verify("kernel_dispatch_tables"));
  EXPECT_EQ(guard.scrub(), 0u);
  set_specialized_kernels_enabled(true);
}

TEST(ArtifactGuard, GeometryBatchFlipIsRebuiltBitIdentically)
{
  Mesh mesh = make_mesh(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());

  Vector<double> v(laplace.n_dofs()), reference(laplace.n_dofs()),
    repaired(laplace.n_dofs());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = std::cos(0.1 * double(i));
  laplace.vmult(reference, v);

  resilience::ArtifactGuard guard;
  resilience::protect_matrix_free(guard, mf);

  auto &cm = mf.cell_metric_mutable(0);
  unsigned char *bytes = nullptr;
  if (cm.batch_det.size() > 0)
    bytes = reinterpret_cast<unsigned char *>(cm.batch_det.data());
  else if (cm.JxW.size() > 0)
    bytes = reinterpret_cast<unsigned char *>(cm.JxW.data());
  ASSERT_NE(bytes, nullptr) << "no cell metric data to corrupt";
  bytes[6] ^= 0x01;

  EXPECT_FALSE(guard.verify("matrix_free"));
  EXPECT_EQ(guard.scrub(), 1u);
  EXPECT_TRUE(guard.verify("matrix_free")); // recompute is deterministic
  laplace.vmult(repaired, v);
  EXPECT_TRUE(bitwise_equal(repaired, reference));
}

TEST(ArtifactGuard, PartitionerExchangeListFlipIsRebuilt)
{
  Mesh mesh = make_mesh(1);
  const int n_ranks = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  auto part =
    vmpi::Partitioner::cell_partitioner(mesh, rank_of_cell, 0, n_ranks);
  const auto reference =
    vmpi::Partitioner::cell_partitioner(mesh, rank_of_cell, 0, n_ranks);
  ASSERT_FALSE(part.ghost_indices().empty());

  resilience::ArtifactGuard guard;
  resilience::protect_partitioner(guard, part, mesh, rank_of_cell);
  EXPECT_EQ(guard.scrub(), 0u);

  auto &ghosts = const_cast<std::vector<std::size_t> &>(part.ghost_indices());
  ghosts[0] ^= std::size_t(1) << 7;
  EXPECT_FALSE(guard.verify("partitioner"));
  EXPECT_EQ(guard.scrub(), 1u);
  EXPECT_TRUE(guard.verify("partitioner"));
  EXPECT_EQ(part.ghost_indices(), reference.ghost_indices());
}

TEST(ArtifactGuard, AmgLevelFlipIsRebuiltBitIdentically)
{
  Mesh mesh = make_mesh(1);
  TrilinearGeometry geom(mesh.coarse());
  HybridMultigrid<float> mg;
  mg.setup(mesh, geom, 2, all_dirichlet());

  resilience::ArtifactGuard guard;
  resilience::protect_amg(guard, mg);
  EXPECT_EQ(guard.scrub(), 0u);

  ASSERT_GE(mg.amg().n_levels(), 1u);
  ASSERT_GT(mg.amg().level_nnz(0), 0u);
  reinterpret_cast<unsigned char *>(mg.amg().level_values(0))[6] ^= 0x01;
  EXPECT_FALSE(guard.verify("amg_levels"));
  EXPECT_EQ(guard.scrub(), 1u);
  EXPECT_TRUE(guard.verify("amg_levels")); // AMG setup is deterministic
}

// ---------------------------------------------------------------------------
// tentpole: the CG residual-replay guard (serial)
// ---------------------------------------------------------------------------

namespace
{
SolveStats solve_serial_poisson(const SolverControl &control, Vector<double> &x)
{
  Mesh mesh = make_mesh(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  Vector<double> rhs;
  laplace.assemble_rhs(rhs, forcing, exact_solution);
  Vector<double> diag;
  laplace.compute_diagonal(diag);
  PreconditionJacobi<double> jacobi;
  jacobi.reinit(diag);
  x.reinit(laplace.n_dofs());
  return solve_cg(laplace, x, rhs, jacobi, control);
}

/// Injector that multiplies the first residual entry by 1e30 at every
/// iteration boundary: persistent corruption no rollback can clear.
class PersistentCorruptor : public AbftInjector
{
public:
  void inject(const char *artifact, const unsigned long long, const int,
              void *data, const std::size_t bytes) override
  {
    if (std::strcmp(artifact, "krylov_r") != 0 || bytes < sizeof(double))
      return;
    static_cast<double *>(data)[0] *= 1e30;
  }
};
} // namespace

TEST(CgAbftGuard, FaultFreeGuardedSolveIsBitwiseIdenticalToUnguarded)
{
  SolverControl off;
  Vector<double> x_off;
  const SolveStats s_off = solve_serial_poisson(off, x_off);
  ASSERT_TRUE(s_off.converged);

  SolverControl on;
  on.abft_replay_interval = 4;
  Vector<double> x_on;
  const SolveStats s_on = solve_serial_poisson(on, x_on);
  ASSERT_TRUE(s_on.converged);
  EXPECT_GT(s_on.residual_replays, 0u);
  EXPECT_EQ(s_on.sdc_detected, 0u);
  EXPECT_EQ(s_on.sdc_rollbacks, 0u);
  EXPECT_EQ(s_on.iterations, s_off.iterations);
  EXPECT_TRUE(bitwise_equal(x_on, x_off));
}

TEST(CgAbftGuard, KrylovVectorFlipsAreRolledBackToTheFaultFreeSolution)
{
  SolverControl clean_control;
  clean_control.abft_replay_interval = 4;
  Vector<double> x_clean;
  const SolveStats s_clean = solve_serial_poisson(clean_control, x_clean);
  ASSERT_TRUE(s_clean.converged);

  for (const char *target : {"krylov_x", "krylov_r", "krylov_p"})
  {
    SCOPED_TRACE(target);
    resilience::FaultPlan::Config cfg;
    cfg.seed = 11;
    cfg.bitflip_target = target;
    cfg.bitflip_step = 6;
    // element 10, exponent high bit: a flip no drift threshold can miss
    cfg.bitflip_bit = 64 * 10 + 62;
    resilience::FaultPlan plan(cfg);

    SolverControl control;
    control.abft_replay_interval = 4;
    control.abft_inject = &plan;
    Vector<double> x;
    const SolveStats stats = solve_serial_poisson(control, x);
    EXPECT_EQ(plan.counts().bitflips, 1u);
    EXPECT_TRUE(stats.converged) << to_string(stats.failure);
    EXPECT_GE(stats.sdc_detected, 1u);
    EXPECT_GE(stats.sdc_rollbacks, 1u);
    EXPECT_TRUE(bitwise_equal(x, x_clean))
      << "repaired solution differs from the fault-free run";
  }
}

TEST(CgAbftGuard, PersistentCorruptionExhaustsTheRollbackBudgetAndFails)
{
  PersistentCorruptor corruptor;
  SolverControl control;
  control.abft_replay_interval = 4;
  control.abft_max_rollbacks = 1;
  control.abft_inject = &corruptor;
  Vector<double> x;
  const SolveStats stats = solve_serial_poisson(control, x);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.failure, SolveFailure::sdc_detected);
  EXPECT_GE(stats.residual_replays, 1u);
  EXPECT_GE(stats.sdc_detected, 1u);
  EXPECT_EQ(stats.sdc_rollbacks, 1u); // the whole budget
}

// ---------------------------------------------------------------------------
// tentpole: the guarded V-cycle
// ---------------------------------------------------------------------------

TEST(MultigridAbftGuard, GuardedHealthyVcycleIsBitwiseIdentical)
{
  Mesh mesh = make_mesh(1);
  TrilinearGeometry geom(mesh.coarse());
  HybridMultigrid<float> plain, guarded;
  HybridMultigrid<float>::Options guarded_opts;
  guarded_opts.abft_guard = true;
  plain.setup(mesh, geom, 2, all_dirichlet());
  guarded.setup(mesh, geom, 2, all_dirichlet(), guarded_opts);

  const std::size_t n = plain.level_dofs(plain.n_levels() - 1);
  Vector<double> src(n), dst_plain(n), dst_guarded(n);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::sin(0.05 * double(i));
  plain.vmult(dst_plain, src);
  guarded.vmult(dst_guarded, src);
  EXPECT_TRUE(bitwise_equal(dst_guarded, dst_plain));
  EXPECT_EQ(guarded.abft_vcycle_repairs(), 0u);
}

TEST(MultigridAbftGuard, NonFiniteCoarseLevelIsContainedToAFiniteResult)
{
  Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  HybridMultigrid<float>::Options opts;
  opts.abft_guard = true;
  // force a smoothed AMG level (with h-coarsening and the default coarse
  // size this problem routes straight to the dense LU, bypassing the level
  // matrix the test corrupts)
  opts.h_coarsening = false;
  opts.amg.max_coarse_size = 30;
  HybridMultigrid<float> mg;
  mg.setup(mesh, geom, 2, all_dirichlet(), opts);

  ASSERT_GT(mg.amg().n_levels(), 1u);
  ASSERT_GT(mg.amg().level_nnz(0), 0u);
  mg.amg().level_values(0)[0] = std::numeric_limits<double>::quiet_NaN();

  const std::size_t n = mg.level_dofs(mg.n_levels() - 1);
  Vector<double> src(n), dst(n);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::sin(0.05 * double(i));
  mg.vmult(dst, src);
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_TRUE(std::isfinite(dst[i])) << "non-finite entry " << i;
  EXPECT_GE(mg.abft_vcycle_repairs(), 1u);
}

// ---------------------------------------------------------------------------
// satellite: the recovery ladder's SDC-repair rung and GhostCorruptionError
// routed through resolve_failure()
// ---------------------------------------------------------------------------

TEST(RecoveryLadder, SdcDetectedTakesTheScrubRungWithoutRestoreOrShrink)
{
  std::mutex mutex;
  std::vector<resilience::RecoveryAttempt> attempts;
  resilience::DistributedRecoveryOptions opts;
  const auto report = resilience::run_resilient(
    2, opts,
    [&](vmpi::Communicator &comm, resilience::RecoveryContext &,
        const resilience::RecoveryAttempt &attempt) {
      if (comm.rank() == 0)
      {
        std::lock_guard<std::mutex> lock(mutex);
        attempts.push_back(attempt);
      }
      if (attempt.attempt == 0)
        throw resilience::SdcDetected("injected: unrepairable replay drift");
    });
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.sdc_repairs, 1);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.restores, 0);
  EXPECT_EQ(report.shrinks, 0);
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_FALSE(attempts[0].scrub);
  EXPECT_TRUE(attempts[1].scrub);
  EXPECT_FALSE(attempts[1].restore);
  EXPECT_EQ(attempts[1].n_ranks, 2);
}

TEST(RecoveryLadder, PersistentSdcExhaustsItsOwnBudgetAndRethrows)
{
  resilience::DistributedRecoveryOptions opts;
  opts.max_sdc_repairs = 1;
  EXPECT_THROW(
    resilience::run_resilient(
      2, opts,
      [&](vmpi::Communicator &, resilience::RecoveryContext &,
          const resilience::RecoveryAttempt &) {
        throw resilience::SdcDetected("injected: persists across scrubs");
      }),
    resilience::SdcDetected);
}

TEST(RecoveryLadder, GhostCorruptionRoutesThroughFailureResolutionToRetry)
{
  resilience::DistributedRecoveryOptions opts;
  const auto report = resilience::run_resilient(
    2, opts,
    [&](vmpi::Communicator &, resilience::RecoveryContext &ctx,
        const resilience::RecoveryAttempt &attempt) {
      if (attempt.attempt == 0)
        resilience::with_failure_resolution(ctx, [&]() {
          // a corrupted ghost payload is locally indistinguishable from a
          // dying peer; resolve_failure()'s agreement round (all alive
          // here) is what routes it to the plain-retry rung
          throw vmpi::GhostCorruptionError("injected ghost checksum drift");
        });
    });
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(report.sdc_repairs, 0);
  EXPECT_EQ(report.restores, 0);
  EXPECT_EQ(report.shrinks, 0);
}

// ---------------------------------------------------------------------------
// satellite: end-to-end on four ranks — a mid-solve flip in each protected
// artifact class (Krylov vector, geometry batch, AMG level) is detected and
// repaired locally, and the final solution matches the fault-free run
// bitwise
// ---------------------------------------------------------------------------

namespace
{
struct RankOutcome
{
  SolveStats stats;
  unsigned long long guard_rebuilds = 0;
};

/// Flips one bit of a setup artifact (registered by the victim rank after
/// its stack is built) at a chosen iteration boundary, riding the solver's
/// injection hook for the step/rank trigger.
class TargetedCorruptor : public AbftInjector
{
public:
  int victim = 0;
  unsigned long long step = 0;
  std::atomic<unsigned char *> target{nullptr};
  std::atomic<unsigned long long> flips{0};

  void inject(const char *artifact, const unsigned long long s,
              const int rank, void *, std::size_t) override
  {
    if (std::strcmp(artifact, "krylov_x") != 0 || s != step ||
        rank != victim)
      return;
    unsigned char *t = target.load(std::memory_order_relaxed);
    if (t && flips.fetch_add(1, std::memory_order_relaxed) == 0)
      *t ^= 0x01; // a low exponent bit: an unmissable but finite change
  }
};

void run_distributed_poisson(
  AbftInjector *inject,
  const std::function<void(int, MatrixFree<double> &,
                           HybridMultigrid<float> &)> &post_setup,
  Vector<double> &x_out, std::array<RankOutcome, 4> &out)
{
  const int n_ranks = 4;
  const unsigned int degree = 3;
  Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const BoundaryMap bc = all_dirichlet();

  // serial assembly shared by every rank
  MatrixFree<double>::AdditionalData ref_data;
  ref_data.degrees = {degree};
  ref_data.n_q_points_1d = {degree + 1};
  MatrixFree<double> ref_mf;
  ref_mf.reinit(mesh, geom, ref_data);
  LaplaceOperator<double> ref_laplace;
  ref_laplace.reinit(ref_mf, 0, 0, bc);
  Vector<double> rhs;
  ref_laplace.assemble_rhs(rhs, forcing, exact_solution);
  x_out.reinit(ref_laplace.n_dofs());

  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);

    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    data.rank_of_cell = rank_of_cell;
    data.n_ranks = n_ranks;
    MatrixFree<double> mf;
    mf.reinit(mesh, geom, data);
    LaplaceOperator<double> laplace;
    laplace.reinit(mf, 0, 0, bc);

    HybridMultigrid<float>::Options mg_opts;
    mg_opts.rank_of_cell = rank_of_cell;
    mg_opts.n_ranks = n_ranks;
    mg_opts.abft_guard = true;
    HybridMultigrid<float> mg;
    mg.setup(mesh, geom, degree, bc, mg_opts);
    mg.setup_distributed(comm, part);

    resilience::ArtifactGuard guard;
    resilience::protect_matrix_free(guard, mf);
    resilience::protect_amg(guard, mg);
    post_setup(comm.rank(), mf, mg);

    const unsigned int dofs_per_cell = mf.dofs_per_cell(0);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(rhs);

    SolverControl control;
    control.rel_tol = 1e-11;
    control.abft_replay_interval = 3;
    control.abft_scrub = &guard;
    control.abft_inject = inject;
    const SolveStats stats = solve_cg(laplace, xd, bd, mg, control);

    out[comm.rank()] = {stats, guard.rebuilds()};
    const std::size_t first = xd.first_local_index();
    for (std::size_t i = 0; i < xd.size(); ++i)
      x_out[first + i] = xd.data()[i];
  });
}
} // namespace

TEST(AbftEndToEnd, InjectedFlipsAreRepairedLocallyOnFourRanks)
{
  const auto no_setup = [](int, MatrixFree<double> &,
                           HybridMultigrid<float> &) {};

  // fault-free reference
  Vector<double> x_clean;
  std::array<RankOutcome, 4> clean{};
  run_distributed_poisson(nullptr, no_setup, x_clean, clean);
  for (const auto &r : clean)
  {
    ASSERT_TRUE(r.stats.converged) << to_string(r.stats.failure);
    EXPECT_GT(r.stats.residual_replays, 0u);
    EXPECT_EQ(r.stats.sdc_detected, 0u);
    EXPECT_EQ(r.stats.scrub_rebuilds, 0u);
  }
  ASSERT_GT(clean[0].stats.iterations, 7u)
    << "solve too short for a step-5 flip to be exercised";

  { // a flipped bit in a Krylov vector: caught by the residual replay (or
    // the non-finite rung), repaired by a snapshot rollback on every rank
    SCOPED_TRACE("krylov vector");
    resilience::FaultPlan::Config cfg;
    cfg.seed = 5;
    cfg.bitflip_target = "krylov_r";
    cfg.bitflip_step = 5;
    cfg.bitflip_rank = 2;
    cfg.bitflip_bit = 64 * 9 + 62;
    resilience::FaultPlan plan(cfg);

    Vector<double> x;
    std::array<RankOutcome, 4> out{};
    run_distributed_poisson(&plan, no_setup, x, out);
    EXPECT_EQ(plan.counts().bitflips, 1u);
    for (const auto &r : out)
    {
      EXPECT_TRUE(r.stats.converged) << to_string(r.stats.failure);
      EXPECT_GE(r.stats.sdc_detected, 1u);
      EXPECT_GE(r.stats.sdc_rollbacks, 1u);
      EXPECT_EQ(r.stats.scrub_rebuilds, 0u);
    }
    EXPECT_TRUE(bitwise_equal(x, x_clean));
  }

  { // a flipped bit in a compressed geometry batch: caught by the victim's
    // checksum scrub, rebuilt bit-identically from the mesh, and the
    // rollback decision is collective (the allreduced rebuild count)
    SCOPED_TRACE("geometry batch");
    TargetedCorruptor corruptor;
    corruptor.victim = 1;
    corruptor.step = 5;
    Vector<double> x;
    std::array<RankOutcome, 4> out{};
    run_distributed_poisson(
      &corruptor,
      [&](const int rank, MatrixFree<double> &mf, HybridMultigrid<float> &) {
        if (rank != corruptor.victim)
          return;
        auto &cm = mf.cell_metric_mutable(0);
        unsigned char *bytes =
          cm.batch_det.size() > 0
            ? reinterpret_cast<unsigned char *>(cm.batch_det.data())
            : reinterpret_cast<unsigned char *>(cm.JxW.data());
        corruptor.target.store(bytes + 6, std::memory_order_relaxed);
      },
      x, out);
    EXPECT_EQ(corruptor.flips.load(), 1u);
    EXPECT_GE(out[1].guard_rebuilds, 1u);
    EXPECT_GE(out[1].stats.scrub_rebuilds, 1u);
    for (const auto &r : out)
    {
      EXPECT_TRUE(r.stats.converged) << to_string(r.stats.failure);
      EXPECT_GE(r.stats.sdc_detected, 1u);
      EXPECT_GE(r.stats.sdc_rollbacks, 1u);
    }
    EXPECT_TRUE(bitwise_equal(x, x_clean));
  }

  { // a flipped bit in an AMG level matrix: invisible to the replay
    // invariants (a perturbed preconditioner preserves r = b - A x), caught
    // by the checksum scrub alone and rebuilt deterministically
    SCOPED_TRACE("amg level");
    TargetedCorruptor corruptor;
    corruptor.victim = 3;
    corruptor.step = 5;
    Vector<double> x;
    std::array<RankOutcome, 4> out{};
    run_distributed_poisson(
      &corruptor,
      [&](const int rank, MatrixFree<double> &, HybridMultigrid<float> &mg) {
        if (rank != corruptor.victim)
          return;
        ASSERT_GT(mg.amg().level_nnz(0), 0u);
        corruptor.target.store(
          reinterpret_cast<unsigned char *>(mg.amg().level_values(0)) + 6,
          std::memory_order_relaxed);
      },
      x, out);
    EXPECT_EQ(corruptor.flips.load(), 1u);
    EXPECT_GE(out[3].guard_rebuilds, 1u);
    EXPECT_GE(out[3].stats.scrub_rebuilds, 1u);
    for (const auto &r : out)
    {
      EXPECT_TRUE(r.stats.converged) << to_string(r.stats.failure);
      EXPECT_GE(r.stats.sdc_detected, 1u);
      EXPECT_GE(r.stats.sdc_rollbacks, 1u);
    }
    EXPECT_TRUE(bitwise_equal(x, x_clean));
  }
}
