#include <gtest/gtest.h>

#include <cmath>

#include "common/vector.h"

using namespace dgflow;

template <typename Number>
class VectorTest : public ::testing::Test
{};

using Precisions = ::testing::Types<double, float>;
TYPED_TEST_SUITE(VectorTest, Precisions);

TYPED_TEST(VectorTest, ReinitZeroes)
{
  Vector<TypeParam> v(5);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(v(i), TypeParam(0));
}

TYPED_TEST(VectorTest, Blas1Operations)
{
  using N = TypeParam;
  const std::size_t n = 100;
  Vector<N> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    x(i) = N(i % 7) - N(3);
    y(i) = N(0.5) * N(i % 5);
  }
  z.equ(N(2), x);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(z(i), 2 * x(i));

  z.add(N(3), y);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(z(i), 2 * x(i) + 3 * y(i));

  z.sadd(N(0.5), N(1), x);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(z(i), N(0.5) * (2 * x(i) + 3 * y(i)) + x(i));

  z.equ(N(1), x, N(-1), y);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(z(i), x(i) - y(i));
}

TYPED_TEST(VectorTest, DotAndNorms)
{
  using N = TypeParam;
  Vector<N> x(3), y(3);
  x(0) = 1;
  x(1) = 2;
  x(2) = -2;
  y(0) = 3;
  y(1) = -1;
  y(2) = 0.5;
  EXPECT_FLOAT_EQ(x.dot(y), N(3 - 2 - 1));
  EXPECT_FLOAT_EQ(x.l2_norm(), N(3));
  EXPECT_FLOAT_EQ(x.linfty_norm(), N(2));
  EXPECT_FLOAT_EQ(x.norm_sqr(), N(9));
}

TYPED_TEST(VectorTest, ScalePointwise)
{
  using N = TypeParam;
  Vector<N> x(4), d(4);
  for (int i = 0; i < 4; ++i)
  {
    x(i) = N(i + 1);
    d(i) = N(2);
  }
  x.scale_pointwise(d);
  for (int i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(x(i), N(2 * (i + 1)));
}

TEST(VectorMixedPrecision, CopyAndConvert)
{
  Vector<double> xd(10);
  for (std::size_t i = 0; i < 10; ++i)
    xd(i) = 1.0 + 1e-3 * double(i);
  Vector<float> xf;
  xf.copy_and_convert(xd);
  ASSERT_EQ(xf.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_FLOAT_EQ(xf(i), float(xd(i)));
  Vector<double> back;
  back.copy_and_convert(xf);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(back(i), xd(i), 1e-7);
}

TEST(VectorMixedPrecision, FloatDotAccumulatesInDouble)
{
  // large vector of small values: float accumulation would lose digits
  const std::size_t n = 1 << 20;
  Vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x(i) = 1e-3f;
  const float sum = x.dot(x);
  EXPECT_NEAR(sum, float(n) * 1e-6f, 1e-2);
}
