#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>

#include "resilience/fault_injection.h"
#include "solvers/cg.h"
#include "vmpi/distributed.h"

using namespace dgflow;

namespace
{
SparseMatrix poisson_3d(const std::size_t m)
{
  const std::size_t n = m * m * m;
  auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  std::vector<SparseMatrix::Triplet> t;
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i)
      {
        const std::size_t r = idx(i, j, k);
        t.push_back({r, r, 6.});
        if (i > 0)
          t.push_back({r, idx(i - 1, j, k), -1.});
        if (i + 1 < m)
          t.push_back({r, idx(i + 1, j, k), -1.});
        if (j > 0)
          t.push_back({r, idx(i, j - 1, k), -1.});
        if (j + 1 < m)
          t.push_back({r, idx(i, j + 1, k), -1.});
        if (k > 0)
          t.push_back({r, idx(i, j, k - 1), -1.});
        if (k + 1 < m)
          t.push_back({r, idx(i, j, k + 1), -1.});
      }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}
} // namespace

TEST(FaultPlanTest, DecisionsAreDeterministic)
{
  resilience::FaultPlan::Config cfg;
  cfg.seed = 7;
  cfg.drop_rate = 0.3;
  cfg.delay_rate = 0.3;
  cfg.reorder_rate = 0.3;
  cfg.corrupt_rate = 0.3;
  resilience::FaultPlan a(cfg), b(cfg);
  for (unsigned long long seq = 0; seq < 200; ++seq)
  {
    const auto x = a.on_message(0, 1, 3, seq, 64);
    const auto y = b.on_message(0, 1, 3, seq, 64);
    EXPECT_EQ(x.drop, y.drop) << seq;
    EXPECT_EQ(x.reorder, y.reorder) << seq;
    EXPECT_EQ(x.delay_seconds, y.delay_seconds) << seq;
    EXPECT_EQ(x.corrupt_bytes, y.corrupt_bytes) << seq;
  }
  // the configured rates materialize over 200 draws
  const auto counts = a.counts();
  EXPECT_GT(counts.dropped, 0u);
  EXPECT_GT(counts.delayed, 0u);
  EXPECT_GT(counts.reordered, 0u);
  EXPECT_GT(counts.corrupted, 0u);
}

TEST(FaultPlanTest, ConfigFromEnvReadsKnobs)
{
  setenv("DGFLOW_FAULT_SEED", "42", 1);
  setenv("DGFLOW_FAULT_DROP", "0.25", 1);
  setenv("DGFLOW_FAULT_DELAY_MS", "2.5", 1);
  setenv("DGFLOW_FAULT_STALL_RANK", "3", 1);
  const auto cfg = resilience::FaultPlan::config_from_env();
  unsetenv("DGFLOW_FAULT_SEED");
  unsetenv("DGFLOW_FAULT_DROP");
  unsetenv("DGFLOW_FAULT_DELAY_MS");
  unsetenv("DGFLOW_FAULT_STALL_RANK");
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(cfg.delay_seconds, 2.5e-3);
  EXPECT_EQ(cfg.stall_rank, 3);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.);
  EXPECT_DOUBLE_EQ(cfg.corrupt_rate, 0.);
}

TEST(ResilienceVmpiTest, DefaultTimeoutComesFromEnv)
{
  setenv("DGFLOW_VMPI_TIMEOUT", "0.25", 1);
  vmpi::run(1, [](vmpi::Communicator &comm) {
    EXPECT_DOUBLE_EQ(comm.timeout(), 0.25);
  });
  unsetenv("DGFLOW_VMPI_TIMEOUT");
}

TEST(ResilienceVmpiTest, DroppedMessageSurfacesAsTimeoutError)
{
  resilience::FaultPlan::Config cfg;
  cfg.drop_rate = 1.;
  resilience::FaultPlan plan(cfg);
  bool timed_out = false;
  int err_rank = -2, err_source = -2, err_tag = -2;
  double elapsed = 0.;
  std::string what;

  vmpi::run(2, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    if (comm.rank() == 0)
    {
      std::vector<double> v{3.14};
      comm.send_vector(1, 5, v);
    }
    else
    {
      comm.set_timeout(0.1);
      try
      {
        comm.recv_vector<double>(0, 5, 1);
      }
      catch (const vmpi::TimeoutError &e)
      {
        timed_out = true;
        err_rank = e.rank;
        err_source = e.source;
        err_tag = e.tag;
        elapsed = e.elapsed_seconds;
        what = e.what();
      }
    }
  });

  ASSERT_TRUE(timed_out) << "dropped message must raise, not deadlock";
  EXPECT_EQ(err_rank, 1);
  EXPECT_EQ(err_source, 0);
  EXPECT_EQ(err_tag, 5);
  EXPECT_GE(elapsed, 0.1);
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("tag 5"), std::string::npos) << what;
  EXPECT_EQ(plan.counts().dropped, 1u);
}

TEST(ResilienceVmpiTest, StalledRankCollectiveTimesOutWithContext)
{
  resilience::FaultPlan::Config cfg;
  cfg.stall_rank = 1;
  cfg.stall_seconds = 0.5;
  resilience::FaultPlan plan(cfg);
  std::atomic<int> timeouts{0};

  vmpi::run(2, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    comm.set_timeout(0.1);
    try
    {
      comm.allreduce(1., vmpi::Communicator::Op::sum);
    }
    catch (const vmpi::TimeoutError &e)
    {
      ++timeouts;
      EXPECT_EQ(e.source, -1);
      EXPECT_EQ(e.tag, -1);
      EXPECT_GE(e.elapsed_seconds, 0.1);
      EXPECT_NE(std::string(e.what()).find("allreduce"), std::string::npos)
        << e.what();
    }
  });

  EXPECT_GE(timeouts.load(), 1);
  EXPECT_GE(plan.counts().stalls, 1u);
}

TEST(ResilienceVmpiTest, DelayAndReorderPreserveDistributedCGBitwise)
{
  const SparseMatrix A = poisson_3d(6);
  const std::size_t n = A.n_rows();
  Vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = 1. + 0.01 * double(i % 17);

  const auto run_cg = [&](resilience::FaultPlan *plan) {
    Vector<double> x(n);
    unsigned int its = 0;
    vmpi::run(4, [&](vmpi::Communicator &comm) {
      if (plan)
        comm.install_fault_handler(plan);
      vmpi::DistributedCSR dist(comm, A);
      vmpi::DistributedVector<double> xl, bl;
      dist.initialize_vector(xl);
      dist.initialize_vector(bl);
      bl.copy_owned_from(b);
      PreconditionIdentity id;
      SolverControl ctrl;
      ctrl.rel_tol = 1e-10;
      ctrl.max_iterations = 500;
      const auto stats = solve_cg(dist, xl, bl, id, ctrl);
      if (comm.rank() == 0)
        its = stats.iterations;
      for (std::size_t i = 0; i < dist.n_local(); ++i)
        x[dist.row_begin() + i] = xl.data()[i]; // disjoint rows: no race
    });
    return std::make_pair(x, its);
  };

  const auto clean = run_cg(nullptr);

  resilience::FaultPlan::Config cfg;
  cfg.seed = 3;
  cfg.delay_rate = 0.3;
  cfg.delay_seconds = 1e-3;
  cfg.reorder_rate = 0.3;
  resilience::FaultPlan plan(cfg);
  const auto faulty = run_cg(&plan);

  // the faults fired, and the per-(source,tag) FIFO preserved under delay
  // and reorder keeps the numerics bit-for-bit identical
  const auto counts = plan.counts();
  EXPECT_GT(counts.delayed + counts.reordered, 0u);
  EXPECT_EQ(clean.second, faulty.second);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(clean.first[i], faulty.first[i]) << "row " << i;
}

TEST(ResilienceVmpiTest, CorruptionIsAppliedAndDeterministic)
{
  resilience::FaultPlan::Config cfg;
  cfg.corrupt_rate = 1.;
  cfg.corrupt_bytes = 2;

  const auto run_once = [&]() {
    resilience::FaultPlan plan(cfg);
    std::vector<unsigned char> received;
    vmpi::run(2, [&](vmpi::Communicator &comm) {
      comm.install_fault_handler(&plan);
      if (comm.rank() == 0)
      {
        const std::vector<unsigned char> payload{1, 2, 3, 4};
        comm.send_vector(1, 9, payload);
      }
      else
        received = comm.recv_vector<unsigned char>(0, 9, 4);
    });
    EXPECT_EQ(plan.counts().corrupted, 1u);
    return received;
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first, second); // same seed, same corruption
  EXPECT_NE(first[0], 1u);  // leading bytes flipped...
  EXPECT_NE(first[1], 2u);
  EXPECT_EQ(first[2], 3u); // ...the rest untouched
  EXPECT_EQ(first[3], 4u);
}

TEST(ResilienceVmpiTest, RecvVectorRefusesTruncation)
{
  // 6 payload bytes do not form whole doubles: the receive must throw
  // instead of silently truncating to zero elements
  EXPECT_THROW(vmpi::run(2,
                         [](vmpi::Communicator &comm) {
                           if (comm.rank() == 0)
                           {
                             const std::vector<char> bytes{1, 2, 3, 4, 5, 6};
                             comm.send_vector(1, 3, bytes);
                           }
                           else
                             comm.recv_vector<double>(0, 3, 1);
                         }),
               std::runtime_error);
}
