#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simd/vectorized_array.h"

using namespace dgflow;

template <typename VA>
class VectorizedArrayTest : public ::testing::Test
{};

using TestedTypes =
  ::testing::Types<VectorizedArray<double, 1>, VectorizedArray<float, 1>,
                   VectorizedArray<double, 2>, VectorizedArray<double, 4>,
                   VectorizedArray<float, 4>, VectorizedArray<float, 8>,
                   VectorizedArray<double>, VectorizedArray<float>>;
TYPED_TEST_SUITE(VectorizedArrayTest, TestedTypes);

TYPED_TEST(VectorizedArrayTest, BroadcastAndLanes)
{
  using VA = TypeParam;
  VA a(3.5);
  for (unsigned int l = 0; l < VA::width; ++l)
    EXPECT_EQ(a[l], typename VA::value_type(3.5));
}

TYPED_TEST(VectorizedArrayTest, ArithmeticMatchesScalar)
{
  using VA = TypeParam;
  using N = typename VA::value_type;
  VA a, b;
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    a[l] = N(1.5) + N(l);
    b[l] = N(0.25) * (N(l) + N(1));
  }
  const VA sum = a + b, diff = a - b, prod = a * b, quot = a / b;
  const VA fused = a * b + N(2.) * a - b / N(4.);
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    const N x = a[l], y = b[l];
    EXPECT_FLOAT_EQ(sum[l], x + y);
    EXPECT_FLOAT_EQ(diff[l], x - y);
    EXPECT_FLOAT_EQ(prod[l], x * y);
    EXPECT_FLOAT_EQ(quot[l], x / y);
    EXPECT_FLOAT_EQ(fused[l], x * y + N(2.) * x - y / N(4.));
  }
}

TYPED_TEST(VectorizedArrayTest, LoadStoreRoundtrip)
{
  using VA = TypeParam;
  using N = typename VA::value_type;
  std::vector<N> in(VA::width), out(VA::width);
  std::iota(in.begin(), in.end(), N(7));
  VA a;
  a.load(in.data());
  a.store(out.data());
  EXPECT_EQ(in, out);
}

TYPED_TEST(VectorizedArrayTest, GatherScatter)
{
  using VA = TypeParam;
  using N = typename VA::value_type;
  const unsigned int n = 4 * VA::width;
  std::vector<N> base(n);
  std::iota(base.begin(), base.end(), N(0));
  std::vector<unsigned int> idx(VA::width);
  for (unsigned int l = 0; l < VA::width; ++l)
    idx[l] = (3 * l + 1) % n;
  VA a;
  a.gather(base.data(), idx.data());
  for (unsigned int l = 0; l < VA::width; ++l)
    EXPECT_EQ(a[l], base[idx[l]]);
  std::vector<N> dst(n, N(-1));
  a.scatter(dst.data(), idx.data());
  for (unsigned int l = 0; l < VA::width; ++l)
    EXPECT_EQ(dst[idx[l]], base[idx[l]]);
}

TYPED_TEST(VectorizedArrayTest, MathFunctions)
{
  using VA = TypeParam;
  using N = typename VA::value_type;
  VA a;
  for (unsigned int l = 0; l < VA::width; ++l)
    a[l] = N(l) + N(0.25);
  const VA r = sqrt(a);
  for (unsigned int l = 0; l < VA::width; ++l)
    EXPECT_FLOAT_EQ(r[l], std::sqrt(a[l]));

  VA b = N(2.) - a;
  const VA mx = max(a, b), mn = min(a, b), ab = abs(b);
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    EXPECT_EQ(mx[l], std::max(a[l], b[l]));
    EXPECT_EQ(mn[l], std::min(a[l], b[l]));
    EXPECT_EQ(ab[l], std::abs(b[l]));
  }
  EXPECT_EQ(max_over_lanes(a), a[VA::width - 1]);
}

TYPED_TEST(VectorizedArrayTest, HorizontalSum)
{
  using VA = TypeParam;
  using N = typename VA::value_type;
  VA a;
  N expected = 0;
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    a[l] = N(l + 1);
    expected += N(l + 1);
  }
  EXPECT_FLOAT_EQ(a.sum(), expected);
}

TEST(VectorizedArrayWidth, MatchesTargetISA)
{
#if defined(__AVX512F__)
  EXPECT_EQ((VectorizedArray<double>::width), 8u);
  EXPECT_EQ((VectorizedArray<float>::width), 16u);
#elif defined(__AVX__)
  EXPECT_EQ((VectorizedArray<double>::width), 4u);
#endif
}

TEST(TransposeUtilities, LoadTransposeStoreRoundtrip)
{
  using VA = VectorizedArray<double>;
  constexpr unsigned int W = VA::width;
  const unsigned int n_entries = 27;
  std::vector<double> storage(W * n_entries);
  std::iota(storage.begin(), storage.end(), 0.);
  std::vector<unsigned int> offsets(W);
  for (unsigned int l = 0; l < W; ++l)
    offsets[l] = l * n_entries;

  std::vector<VA> soa(n_entries);
  vectorized_load_and_transpose(n_entries, storage.data(), offsets.data(),
                                soa.data());
  for (unsigned int i = 0; i < n_entries; ++i)
    for (unsigned int l = 0; l < W; ++l)
      EXPECT_EQ(soa[i][l], storage[offsets[l] + i]);

  std::vector<double> back(W * n_entries, -1.);
  vectorized_transpose_and_store(false, n_entries, soa.data(), back.data(),
                                 offsets.data());
  EXPECT_EQ(back, storage);

  // additive store doubles the values
  vectorized_transpose_and_store(true, n_entries, soa.data(), back.data(),
                                 offsets.data());
  for (unsigned int i = 0; i < storage.size(); ++i)
    EXPECT_EQ(back[i], 2. * storage[i]);
}
