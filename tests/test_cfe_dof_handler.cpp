#include <gtest/gtest.h>

#include "dof/dof_handler.h"
#include "mesh/generators.h"

using namespace dgflow;

TEST(CFEDofHandler, CountsOnUniformCube)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2); // 4^3 cells -> 5^3 vertices
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  EXPECT_EQ(dofs.n_dofs(), 125u);
  EXPECT_EQ(dofs.n_constraints(), 0u);
}

TEST(CFEDofHandler, CountsOnSubdividedBox)
{
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(2, 1, 1), {{2, 1, 1}}));
  mesh.refine_uniform(1); // 4x2x2 cells -> 5x3x3 vertices
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  EXPECT_EQ(dofs.n_dofs(), 45u);
}

TEST(CFEDofHandler, SharedVerticesAcrossRotatedTrees)
{
  // the rotated two-cube mesh from the matrix-free tests
  std::vector<Point> vertices;
  for (unsigned int v = 0; v < 8; ++v)
    vertices.push_back(Point(v & 1, (v >> 1) & 1, (v >> 2) & 1));
  auto add_vertex = [&](const Point &p) {
    for (index_t i = 0; i < vertices.size(); ++i)
      if (norm(vertices[i] - p) < 1e-12)
        return i;
    vertices.push_back(p);
    return index_t(vertices.size() - 1);
  };
  std::vector<std::array<index_t, 8>> cells(2);
  for (unsigned int v = 0; v < 8; ++v)
  {
    const double a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    cells[0][v] = v;
    cells[1][v] = add_vertex(Point(1 + c, b, 1 - a));
  }
  Mesh mesh(from_lists(std::move(vertices), std::move(cells)));
  mesh.refine_uniform(1);
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  // 2x1x1 boxes of 2^3 cells: 5x3x3 vertices
  EXPECT_EQ(dofs.n_dofs(), 45u);
  EXPECT_EQ(dofs.n_constraints(), 0u);
}

TEST(CFEDofHandler, HangingConstraintsArePartitionOfUnity)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  mesh.refine(flags);
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  EXPECT_GT(dofs.n_constraints(), 0u);
  for (std::uint32_t i = 0; i < dofs.n_constraints(); ++i)
  {
    const auto &c = dofs.constraint(i | CFEDofHandler::constraint_bit);
    double sum = 0;
    for (const auto &e : c)
    {
      EXPECT_GT(e.weight, 0.);
      sum += e.weight;
    }
    EXPECT_NEAR(sum, 1., 1e-12);
    EXPECT_TRUE(c.size() == 2 || c.size() == 4);
  }
}

TEST(CFEDofHandler, HangingCountsMatchGeometry)
{
  // one refined cell among 8: hanging vertices are 3 face centers, 3+6 edge
  // midpoints on the refined cell's outer faces
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[0] = true;
  mesh.refine(flags);
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  // unconstrained: 27 original + center of refined cell + 3 interior face
  // centers (on faces of the refined cell interior to the refined cell's
  // former volume) + 6 interior edge midpoints... count directly instead:
  // total distinct fine vertices of refined cell = 27, of which 8 coincide
  // with original corners; hanging are those on the 3 faces shared with
  // same-level neighbors: 3 face centers + 9 edge midpoints
  EXPECT_EQ(dofs.n_constraints(), 12u);
  EXPECT_EQ(dofs.n_dofs(), 27u + 7u);
}

TEST(CFEDofHandler, BoundaryFlags)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  ASSERT_EQ(dofs.n_dofs(), 27u);
  const auto all = dofs.boundary_dof_flags([](unsigned int) { return true; });
  unsigned int n_boundary = 0;
  for (const char f : all)
    n_boundary += f;
  EXPECT_EQ(n_boundary, 26u); // all but the center vertex
  const auto x0 = dofs.boundary_dof_flags([](unsigned int id) { return id == 0; });
  unsigned int n_x0 = 0;
  for (const char f : x0)
    n_x0 += f;
  EXPECT_EQ(n_x0, 9u);
}
