#include <gtest/gtest.h>

#include <cmath>

#include "fem/quadrature.h"

using namespace dgflow;

namespace
{
double integrate_monomial(const Quadrature1D &q, const unsigned int p)
{
  double s = 0;
  for (unsigned int i = 0; i < q.size(); ++i)
    s += q.weights[i] * std::pow(q.points[i], double(p));
  return s;
}
} // namespace

class GaussQuadrature : public ::testing::TestWithParam<unsigned int>
{};

TEST_P(GaussQuadrature, ExactForDegree2nMinus1)
{
  const unsigned int n = GetParam();
  const Quadrature1D q = gauss_quadrature(n);
  for (unsigned int p = 0; p <= 2 * n - 1; ++p)
    EXPECT_NEAR(integrate_monomial(q, p), 1. / (p + 1), 1e-13)
      << "n=" << n << " p=" << p;
}

TEST_P(GaussQuadrature, PointsInInteriorAndAscending)
{
  const unsigned int n = GetParam();
  const Quadrature1D q = gauss_quadrature(n);
  ASSERT_EQ(q.size(), n);
  for (unsigned int i = 0; i < n; ++i)
  {
    EXPECT_GT(q.points[i], 0.);
    EXPECT_LT(q.points[i], 1.);
    if (i > 0)
      EXPECT_GT(q.points[i], q.points[i - 1]);
  }
}

TEST_P(GaussQuadrature, SymmetricAboutMidpoint)
{
  const unsigned int n = GetParam();
  const Quadrature1D q = gauss_quadrature(n);
  for (unsigned int i = 0; i < n; ++i)
  {
    EXPECT_NEAR(q.points[i] + q.points[n - 1 - i], 1., 1e-14);
    EXPECT_NEAR(q.weights[i], q.weights[n - 1 - i], 1e-14);
  }
}

TEST_P(GaussQuadrature, WeightsSumToOne)
{
  const Quadrature1D q = gauss_quadrature(GetParam());
  double s = 0;
  for (const double w : q.weights)
    s += w;
  EXPECT_NEAR(s, 1., 1e-14);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, GaussQuadrature,
                         ::testing::Range(1u, 13u));

class GaussLobattoQuadrature : public ::testing::TestWithParam<unsigned int>
{};

TEST_P(GaussLobattoQuadrature, ExactForDegree2nMinus3)
{
  const unsigned int n = GetParam();
  const Quadrature1D q = gauss_lobatto_quadrature(n);
  for (unsigned int p = 0; p <= 2 * n - 3; ++p)
    EXPECT_NEAR(integrate_monomial(q, p), 1. / (p + 1), 1e-12)
      << "n=" << n << " p=" << p;
}

TEST_P(GaussLobattoQuadrature, IncludesEndpoints)
{
  const Quadrature1D q = gauss_lobatto_quadrature(GetParam());
  EXPECT_DOUBLE_EQ(q.points.front(), 0.);
  EXPECT_DOUBLE_EQ(q.points.back(), 1.);
}

TEST_P(GaussLobattoQuadrature, AscendingSymmetricPositiveWeights)
{
  const unsigned int n = GetParam();
  const Quadrature1D q = gauss_lobatto_quadrature(n);
  for (unsigned int i = 0; i < n; ++i)
  {
    if (i > 0)
      EXPECT_GT(q.points[i], q.points[i - 1]);
    EXPECT_GT(q.weights[i], 0.);
    EXPECT_NEAR(q.points[i] + q.points[n - 1 - i], 1., 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, GaussLobattoQuadrature,
                         ::testing::Range(2u, 13u));

TEST(QuadratureGoldenValues, TwoAndThreePointGauss)
{
  // classical values mapped from [-1,1] to [0,1]
  const Quadrature1D q2 = gauss_quadrature(2);
  EXPECT_NEAR(q2.points[0], 0.5 - 0.5 / std::sqrt(3.), 1e-15);
  EXPECT_NEAR(q2.points[1], 0.5 + 0.5 / std::sqrt(3.), 1e-15);
  EXPECT_NEAR(q2.weights[0], 0.5, 1e-15);

  const Quadrature1D q3 = gauss_quadrature(3);
  EXPECT_NEAR(q3.points[0], 0.5 - 0.5 * std::sqrt(0.6), 1e-15);
  EXPECT_NEAR(q3.points[1], 0.5, 1e-15);
  EXPECT_NEAR(q3.weights[1], 4. / 9., 1e-14);
  EXPECT_NEAR(q3.weights[0], 5. / 18., 1e-14);
}

TEST(QuadratureGoldenValues, ThreePointGaussLobatto)
{
  const Quadrature1D q3 = gauss_lobatto_quadrature(3);
  EXPECT_NEAR(q3.points[1], 0.5, 1e-15);
  EXPECT_NEAR(q3.weights[0], 1. / 6., 1e-14);
  EXPECT_NEAR(q3.weights[1], 4. / 6., 1e-14);
}
