#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "mesh/generators.h"
#include "operators/laplace_operator.h"
#include "operators/mass_operator.h"
#include "solvers/cg.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

void setup_mf(MatrixFree<double> &mf, const Mesh &mesh, const Geometry &geom,
              const unsigned int degree)
{
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  mf.reinit(mesh, geom, data);
}

Vector<double> random_vec(const std::size_t n, const unsigned int seed = 3)
{
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1., 1.);
  Vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = dist(rng);
  return v;
}

double solve_poisson_l2_error(const Mesh &mesh, const Geometry &geom,
                              const unsigned int degree)
{
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, degree);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());

  const auto exact = [](const Point &p) {
    return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
           std::sin(M_PI * p[2]);
  };
  const auto f = [&](const Point &p) { return 3 * M_PI * M_PI * exact(p); };

  Vector<double> rhs, x(laplace.n_dofs());
  laplace.assemble_rhs(rhs, f, exact);

  Vector<double> diag;
  laplace.compute_diagonal(diag);
  PreconditionJacobi<double> jacobi;
  jacobi.reinit(diag);

  SolverControl control;
  control.max_iterations = 10000;
  control.rel_tol = 1e-11;
  const auto result = solve_cg(laplace, x, rhs, jacobi, control);
  EXPECT_TRUE(result.converged);

  return l2_error(mf, 0, 0, x, exact);
}
} // namespace

class LaplaceDegree : public ::testing::TestWithParam<unsigned int>
{};

TEST_P(LaplaceDegree, OperatorIsSymmetric)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  std::vector<bool> flags(8, false);
  flags[2] = true;
  mesh.refine(flags); // include hanging faces in the symmetry check
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.05 * p[1] * p[2], p[1] - 0.04 * p[0],
                 p[2] + 0.03 * p[0] * p[1]);
  });
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, GetParam());
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());

  const auto u = random_vec(laplace.n_dofs(), 11);
  const auto v = random_vec(laplace.n_dofs(), 12);
  Vector<double> Au(u.size()), Av(u.size());
  laplace.vmult(Au, u);
  laplace.vmult(Av, v);
  const double a = Au.dot(v), b = Av.dot(u);
  EXPECT_NEAR(a, b, 1e-11 * std::abs(a));
}

TEST_P(LaplaceDegree, OperatorIsPositiveDefinite)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, GetParam());
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());

  for (unsigned int seed = 0; seed < 5; ++seed)
  {
    const auto u = random_vec(laplace.n_dofs(), seed);
    Vector<double> Au(u.size());
    laplace.vmult(Au, u);
    EXPECT_GT(Au.dot(u), 0.);
  }
}

TEST_P(LaplaceDegree, DiagonalMatchesUnitVectorProbing)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, GetParam());
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());

  Vector<double> diag;
  laplace.compute_diagonal(diag);

  Vector<double> e(laplace.n_dofs()), Ae(laplace.n_dofs());
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::size_t> pick(0, laplace.n_dofs() - 1);
  for (unsigned int rep = 0; rep < 20; ++rep)
  {
    const std::size_t i = pick(rng);
    e = 0.;
    e[i] = 1.;
    laplace.vmult(Ae, e);
    ASSERT_NEAR(diag[i], Ae[i], 1e-11 * std::abs(Ae[i]))
      << "diagonal mismatch at dof " << i;
  }
}

TEST_P(LaplaceDegree, ConvergesAtOptimalRate)
{
  const unsigned int k = GetParam();
  TrilinearGeometry *geom_ptr = nullptr;

  Mesh mesh_c(unit_cube());
  mesh_c.refine_uniform(k <= 2 ? 2 : 1);
  TrilinearGeometry geom_c(mesh_c.coarse());
  geom_ptr = &geom_c;
  const double err_c = solve_poisson_l2_error(mesh_c, *geom_ptr, k);

  Mesh mesh_f(unit_cube());
  mesh_f.refine_uniform(k <= 2 ? 3 : 2);
  TrilinearGeometry geom_f(mesh_f.coarse());
  const double err_f = solve_poisson_l2_error(mesh_f, geom_f, k);

  const double rate = std::log2(err_c / err_f);
  EXPECT_GT(rate, k + 0.6) << "errors: " << err_c << " -> " << err_f;
}

INSTANTIATE_TEST_SUITE_P(Degrees, LaplaceDegree, ::testing::Values(1u, 2u, 3u));

TEST(Laplace, ConvergesOnDeformedMesh)
{
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.06 * std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]),
                 p[1] + 0.05 * std::sin(M_PI * p[1]) * std::sin(M_PI * p[2]),
                 p[2]);
  });
  Mesh mesh_c(unit_cube());
  mesh_c.refine_uniform(2);
  const double err_c = solve_poisson_l2_error(mesh_c, geom, 2);
  Mesh mesh_f(unit_cube());
  mesh_f.refine_uniform(3);
  const double err_f = solve_poisson_l2_error(mesh_f, geom, 2);
  const double rate = std::log2(err_c / err_f);
  EXPECT_GT(rate, 2.6) << "errors: " << err_c << " -> " << err_f;
}

TEST(Laplace, ConvergesWithHangingNodes)
{
  // adaptive refinement toward the domain center
  auto make_mesh = [](const unsigned int base) {
    Mesh mesh(unit_cube());
    mesh.refine_uniform(base);
    std::vector<bool> flags(mesh.n_active_cells(), false);
    for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    {
      const auto lo = mesh.cell_lower_corner(i);
      const double h = mesh.cell_reference_size(i);
      const Point c(lo[0] + h / 2, lo[1] + h / 2, lo[2] + h / 2);
      if (norm(c - Point(0.5, 0.5, 0.5)) < 0.3)
        flags[i] = true;
    }
    mesh.refine(flags);
    return mesh;
  };
  Mesh mesh_c = make_mesh(1);
  TrilinearGeometry geom_c(mesh_c.coarse());
  const double err_c = solve_poisson_l2_error(mesh_c, geom_c, 2);
  Mesh mesh_f = make_mesh(2);
  TrilinearGeometry geom_f(mesh_f.coarse());
  const double err_f = solve_poisson_l2_error(mesh_f, geom_f, 2);
  EXPECT_GT(std::log2(err_c / err_f), 2.5)
    << "errors: " << err_c << " -> " << err_f;
}

TEST(Laplace, MixedDirichletNeumannBoundary)
{
  // u = x^2 + 2y - z with Neumann on x-faces, Dirichlet elsewhere:
  // -laplace u = -2
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, 2);

  BoundaryMap bc;
  bc.set(0, BoundaryType::neumann);
  bc.set(1, BoundaryType::neumann);
  for (unsigned int id = 2; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);

  const auto exact = [](const Point &p) {
    return p[0] * p[0] + 2 * p[1] - p[2];
  };
  // du/dn on x=0: -du/dx = 0; on x=1: du/dx = 2
  const auto g_n = [](const Point &p) { return p[0] < 0.5 ? -0. : 2.; };
  const auto f = [](const Point &) { return -2.; };

  Vector<double> rhs, x(laplace.n_dofs());
  laplace.assemble_rhs(rhs, f, exact, g_n);
  Vector<double> diag;
  laplace.compute_diagonal(diag);
  PreconditionJacobi<double> jacobi;
  jacobi.reinit(diag);
  SolverControl control;
  control.max_iterations = 10000;
  control.rel_tol = 1e-12;
  const auto result = solve_cg(laplace, x, rhs, jacobi, control);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(l2_error(mf, 0, 0, x, exact), 0., 1e-9);
}

TEST(MassOperatorTest, InverseRoundtrip)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.1 * p[1], p[1], p[2] - 0.05 * p[0] * p[1]);
  });
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, 3);
  MassOperator<double, 1> mass;
  mass.reinit(mf, 0, 0);

  const auto u = random_vec(mass.n_dofs());
  Vector<double> Mu(u.size()), back(u.size());
  mass.vmult(Mu, u);
  mass.apply_inverse(back, Mu);
  for (std::size_t i = 0; i < u.size(); ++i)
    ASSERT_NEAR(back[i], u[i], 1e-12);
}

TEST(MassOperatorTest, IntegratesConstantToVolume)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, 2);
  MassOperator<double, 1> mass;
  mass.reinit(mf, 0, 0);

  Vector<double> ones(mass.n_dofs()), Mones(mass.n_dofs());
  ones = 1.;
  mass.vmult(Mones, ones);
  EXPECT_NEAR(Mones.dot(ones), 1.0, 1e-12); // unit cube volume
}

TEST(CGSolver, SolvesDiagonalSystemExactly)
{
  struct DiagOp
  {
    Vector<double> d;
    void vmult(Vector<double> &dst, const Vector<double> &src) const
    {
      dst = src;
      dst.scale_pointwise(d);
    }
  } A;
  A.d.reinit(50);
  for (std::size_t i = 0; i < 50; ++i)
    A.d[i] = 1. + double(i);
  const auto b = random_vec(50);
  Vector<double> x(50);
  PreconditionIdentity id;
  SolverControl ctrl;
  ctrl.rel_tol = 1e-14;
  ctrl.max_iterations = 200;
  const auto res = solve_cg(A, x, b, id, ctrl);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_NEAR(x[i], b[i] / A.d[i], 1e-10);
}

// ---------------------------------------------------------------------------
// Fast-path equivalence: the SIP Laplacian must produce the same action with
// and without metric compression, and with and without the specialized
// fixed-size kernels, on Cartesian, affine, and deformed meshes. Also checks
// that the geometry classifier assigns the expected GeometryType.
// ---------------------------------------------------------------------------

#include <memory>

#include "fem/kernel_dispatch.h"

namespace
{
/// Applies the SIP Laplacian to a fixed random vector with the given
/// compression / specialization settings.
Vector<double> laplace_action(const Mesh &mesh, const Geometry &geom,
                              const unsigned int degree,
                              const unsigned int n_q_1d,
                              const bool compress, const bool specialized,
                              GeometryType *observed_type = nullptr)
{
  set_specialized_kernels_enabled(specialized);
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {n_q_1d};
  data.compress_geometry = compress;
  mf.reinit(mesh, geom, data);
  if (observed_type)
    *observed_type = mf.cell_geometry_type(0);

  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const auto u = random_vec(laplace.n_dofs(), 99);
  Vector<double> au(u.size());
  laplace.vmult(au, u);
  set_specialized_kernels_enabled(true);
  return au;
}

void expect_vectors_near(const Vector<double> &a, const Vector<double> &b,
                         const double tol)
{
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a[i], b[i], tol * (1. + std::abs(b[i]))) << "entry " << i;
}

struct FastPathMesh
{
  const char *name;
  Mesh mesh;
  std::unique_ptr<Geometry> geom;
  GeometryType expected_type;
};

std::vector<FastPathMesh> fast_path_meshes()
{
  std::vector<FastPathMesh> meshes;
  meshes.reserve(3); // geometries reference the stored meshes: no realloc

  meshes.push_back(
    {"cartesian", Mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1),
                                      {{2, 2, 2}})),
     nullptr, GeometryType::cartesian});
  meshes.back().geom =
    std::make_unique<TrilinearGeometry>(meshes.back().mesh.coarse());

  // sheared parallelepiped cells: constant but non-diagonal Jacobian
  Mesh affine(unit_cube());
  affine.refine_uniform(1);
  meshes.push_back(
    {"affine", affine,
     std::make_unique<AnalyticGeometry>([](index_t, const Point &p) {
       return Point(p[0] + 0.2 * p[1], p[1] + 0.1 * p[2], p[2]);
     }),
     GeometryType::affine});

  Mesh deformed(unit_cube());
  deformed.refine_uniform(1);
  meshes.push_back(
    {"deformed", deformed,
     std::make_unique<AnalyticGeometry>([](index_t, const Point &p) {
       return Point(p[0] + 0.06 * std::sin(M_PI * p[1]),
                    p[1] + 0.05 * p[0] * p[2], p[2] - 0.04 * p[0] * p[0]);
     }),
     GeometryType::general});

  return meshes;
}
} // namespace

TEST(LaplaceFastPath, CompressedMetricMatchesFullMetric)
{
  for (auto &m : fast_path_meshes())
    for (const unsigned int degree : {2u, 3u})
      for (const unsigned int n_q_1d : {degree + 1, (3 * (degree + 1)) / 2})
      {
        SCOPED_TRACE(std::string(m.name) + " degree " +
                     std::to_string(degree) + " n_q " + std::to_string(n_q_1d));
        GeometryType type;
        const auto compressed = laplace_action(m.mesh, *m.geom, degree,
                                               n_q_1d, true, true, &type);
        EXPECT_EQ(type, m.expected_type);
        const auto full =
          laplace_action(m.mesh, *m.geom, degree, n_q_1d, false, true);
        expect_vectors_near(compressed, full, 1e-12);
      }
}

TEST(LaplaceFastPath, SpecializedKernelsMatchGeneric)
{
  for (auto &m : fast_path_meshes())
    for (const unsigned int degree : {2u, 3u, 5u})
      for (const unsigned int n_q_1d : {degree + 1, (3 * (degree + 1)) / 2})
      {
        SCOPED_TRACE(std::string(m.name) + " degree " +
                     std::to_string(degree) + " n_q " + std::to_string(n_q_1d));
        const auto specialized =
          laplace_action(m.mesh, *m.geom, degree, n_q_1d, true, true);
        const auto generic =
          laplace_action(m.mesh, *m.geom, degree, n_q_1d, true, false);
        expect_vectors_near(specialized, generic, 1e-12);
      }
}

TEST(LaplaceFastPath, FullyGenericPathMatchesFullFastPath)
{
  // both levers off vs both on - the strongest end-to-end equivalence
  for (auto &m : fast_path_meshes())
  {
    SCOPED_TRACE(m.name);
    const auto fast = laplace_action(m.mesh, *m.geom, 3, 5, true, true);
    const auto slow = laplace_action(m.mesh, *m.geom, 3, 5, false, false);
    expect_vectors_near(fast, slow, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Kernel backends: the SIP Laplacian selected through AdditionalData::backend
// must be bitwise-identical to today's default for the batch backend, bitwise
// identical to the legacy generic toggle for the generic backend, and agree
// to 1e-13 for the SoA backend — on Cartesian, affine, and deformed meshes,
// serially and on four vmpi ranks with threads.
// ---------------------------------------------------------------------------

#include <cstring>

#include "concurrency/thread_pool.h"
#include "fem/kernel_backend.h"
#include "mesh/partition.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

namespace
{
/// Applies the SIP Laplacian to a fixed random vector with the given kernel
/// backend request (std::nullopt = the process default resolution).
Vector<double> laplace_action_backend(const Mesh &mesh, const Geometry &geom,
                                      const unsigned int degree,
                                      const unsigned int n_q_1d,
                                      const std::optional<KernelBackendType> backend)
{
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {n_q_1d};
  data.backend = backend;
  mf.reinit(mesh, geom, data);
  if (backend)
    EXPECT_EQ(mf.kernel_backend(), *backend);

  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const auto u = random_vec(laplace.n_dofs(), 99);
  Vector<double> au(u.size());
  laplace.vmult(au, u);
  return au;
}

bool vectors_bitwise_equal(const Vector<double> &a, const Vector<double> &b)
{
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}
} // namespace

TEST(LaplaceBackend, BatchIsBitwiseIdenticalToDefault)
{
  ASSERT_EQ(default_kernel_backend(), KernelBackendType::batch);
  for (auto &m : fast_path_meshes())
    for (const unsigned int degree : {2u, 3u, 5u})
      for (const unsigned int n_q_1d : {degree + 1, (3 * (degree + 1)) / 2})
      {
        SCOPED_TRACE(std::string(m.name) + " degree " +
                     std::to_string(degree) + " n_q " + std::to_string(n_q_1d));
        const auto by_default = laplace_action_backend(m.mesh, *m.geom, degree,
                                                       n_q_1d, std::nullopt);
        const auto batch = laplace_action_backend(
          m.mesh, *m.geom, degree, n_q_1d, KernelBackendType::batch);
        EXPECT_TRUE(vectors_bitwise_equal(batch, by_default));
      }
}

TEST(LaplaceBackend, GenericIsBitwiseIdenticalToLegacyToggle)
{
  for (auto &m : fast_path_meshes())
  {
    SCOPED_TRACE(m.name);
    // the deprecated bool reproduced by its backend equivalent
    const auto legacy = laplace_action(m.mesh, *m.geom, 3, 5, true, false);
    const auto generic = laplace_action_backend(m.mesh, *m.geom, 3, 5,
                                                KernelBackendType::generic);
    EXPECT_TRUE(vectors_bitwise_equal(generic, legacy));
  }
}

TEST(LaplaceBackend, SoAMatchesBatchTo1em13)
{
  for (auto &m : fast_path_meshes())
    for (const unsigned int degree : {2u, 3u, 5u})
      for (const unsigned int n_q_1d : {degree + 1, (3 * (degree + 1)) / 2})
      {
        SCOPED_TRACE(std::string(m.name) + " degree " +
                     std::to_string(degree) + " n_q " + std::to_string(n_q_1d));
        const auto batch = laplace_action_backend(
          m.mesh, *m.geom, degree, n_q_1d, KernelBackendType::batch);
        const auto soa = laplace_action_backend(m.mesh, *m.geom, degree,
                                                n_q_1d, KernelBackendType::soa);
        expect_vectors_near(soa, batch, 1e-13);
      }
}

TEST(LaplaceBackend, EnvSelectsBackendAtReinit)
{
  ASSERT_EQ(setenv("DGFLOW_BACKEND", "soa", 1), 0);
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  setup_mf(mf, mesh, geom, 3);
  EXPECT_EQ(mf.kernel_backend(), KernelBackendType::soa);
  // an explicit AdditionalData::backend request beats the env variable
  MatrixFree<double> mf2;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {3};
  data.n_q_points_1d = {4};
  data.backend = KernelBackendType::batch;
  mf2.reinit(mesh, geom, data);
  EXPECT_EQ(mf2.kernel_backend(), KernelBackendType::batch);
  ASSERT_EQ(unsetenv("DGFLOW_BACKEND"), 0);
}

namespace
{
/// The distributed threaded Laplacian action on 4 vmpi ranks, gathered to a
/// full-length vector, with the given backend on every rank.
Vector<double> distributed_threaded_action(const Mesh &mesh,
                                           const unsigned int degree,
                                           const unsigned int nt,
                                           const KernelBackendType backend)
{
  concurrency::ThreadPool::instance().set_n_threads(nt);
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  data.n_threads = nt;
  data.backend = backend;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  const auto src = random_vec(laplace.n_dofs(), 99);
  Vector<double> dst(laplace.n_dofs());
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), yd;
    xd.copy_owned_from(src);
    laplace.vmult(yd, xd);
    for (std::size_t i = 0; i < yd.size(); ++i)
      dst[yd.first_local_index() + i] = yd.data()[i];
  });
  concurrency::ThreadPool::instance().set_n_threads(1);
  return dst;
}
} // namespace

TEST(LaplaceBackend, FourRanksThreadedSoAMatchesBatch)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  const unsigned int degree = 2;
  const auto batch_serial =
    distributed_threaded_action(mesh, degree, 1, KernelBackendType::batch);
  // batch stays bitwise deterministic across thread counts...
  const auto batch_threaded =
    distributed_threaded_action(mesh, degree, 4, KernelBackendType::batch);
  EXPECT_TRUE(vectors_bitwise_equal(batch_threaded, batch_serial));
  // ...and the SoA backend agrees to 1e-13 under ranks x threads as well
  for (const unsigned int nt : {1u, 4u})
  {
    SCOPED_TRACE(nt);
    const auto soa =
      distributed_threaded_action(mesh, degree, nt, KernelBackendType::soa);
    expect_vectors_near(soa, batch_serial, 1e-13);
  }
}
