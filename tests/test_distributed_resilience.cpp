// Rank-failure tolerance of the distributed solve (ctest label
// distributed_resilience; also run under DGFLOW_SANITIZE=thread by
// run_benchmarks.sh): bounded waits everywhere, the agree() failure
// agreement protocol, epoch/drain semantics, deterministic rank-death and
// collective-corruption injection, sharded N->M checkpoints with buddy
// replication, and the end-to-end shrinking recovery of a killed-rank
// multigrid Poisson solve.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "mesh/generators.h"
#include "mesh/partition.h"
#include "multigrid/hybrid_multigrid.h"
#include "operators/laplace_operator.h"
#include "resilience/distributed_recovery.h"
#include "resilience/fault_injection.h"
#include "resilience/shard_checkpoint.h"
#include "solvers/cg.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/health_monitor.h"
#include "vmpi/partitioner.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

Mesh make_mesh(const unsigned int refinements)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(refinements);
  return mesh;
}

double exact_solution(const Point &p)
{
  return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
         std::sin(M_PI * p[2]);
}

double forcing(const Point &p) { return 3 * M_PI * M_PI * exact_solution(p); }

double seconds_since(const std::chrono::steady_clock::time_point start)
{
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
    .count();
}

/// Unique scratch directory for a test case (removed and recreated).
std::string scratch_dir(const std::string &name)
{
  const std::string dir =
    (std::filesystem::temp_directory_path() / ("dgflow_" + name)).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}
} // namespace

// ---------------------------------------------------------------------------
// satellite: bounded waits everywhere (the latent-deadlock regression)
// ---------------------------------------------------------------------------

// Regression: a rank stalled by fault injection *past* the vmpi timeout used
// to sleep its full (potentially unbounded) stall inside the collective,
// blocking vmpi::run's join long after every peer had already timed out —
// with a long enough stall, a hung test. The stall is now capped at the
// rank's own deadline, so the whole run unwinds within the timeout scale.
TEST(BoundedWaits, StalledRankPastTimeoutDoesNotHangTheRun)
{
  resilience::FaultPlan::Config cfg;
  cfg.stall_rank = 1;
  cfg.stall_seconds = 30.; // without the fix, run() blocks all 30 s
  resilience::FaultPlan plan(cfg);

  std::atomic<int> timeouts{0};
  const auto start = std::chrono::steady_clock::now();
  vmpi::run(4, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    comm.set_timeout(0.2);
    try
    {
      comm.barrier();
    }
    catch (const vmpi::TimeoutError &e)
    {
      EXPECT_EQ(e.source, -1);
      EXPECT_EQ(e.tag, -1);
      ++timeouts;
    }
  });
  // every rank unwinds: the three peers at the rendezvous deadline, the
  // stalled rank at its own capped deadline
  EXPECT_EQ(timeouts.load(), 4);
  EXPECT_LT(seconds_since(start), 10.);
}

// Peers blocked in a DistributedVector exchange towards a dead rank must
// throw TimeoutError too (bounded wait in compress_add/update_ghost_values).
TEST(BoundedWaits, PeerBlockedInGhostExchangeTimesOutWhenNeighborDies)
{
  const Mesh mesh = make_mesh(1);
  const int n_ranks = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  resilience::FaultPlan::Config cfg;
  cfg.kill_rank = 1;
  cfg.kill_step = 0; // rank 1 dies at its first collective
  resilience::FaultPlan plan(cfg);

  std::atomic<int> timeouts{0}, kills{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    comm.set_timeout(0.2);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, 1);
    try
    {
      // the victim dies before entering its first collective, i.e. before
      // it has sent any ghost data; the survivor walks straight into the
      // exchange and must time out there instead of hanging
      if (comm.rank() == 1)
        comm.barrier();
      v = 1.;
      v.update_ghost_values(); // rank 0: recv from the dead rank
      v.compress_add();
    }
    catch (const vmpi::TimeoutError &)
    {
      v.abandon_exchange();
      EXPECT_EQ(v.ghost_state(),
                vmpi::DistributedVector<double>::GhostState::owned_only);
      ++timeouts;
    }
    catch (const vmpi::RankFailure &)
    {
      ++kills;
    }
  });
  EXPECT_EQ(timeouts.load(), 1) << "the surviving rank must not hang";
  EXPECT_EQ(kills.load(), 1);
}

// ---------------------------------------------------------------------------
// the agreement protocol
// ---------------------------------------------------------------------------

TEST(Agreement, AllHealthyRoundIsUnanimousOnEveryRank)
{
  const int n_ranks = 4;
  std::vector<vmpi::AgreeResult> results(n_ranks);
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    results[comm.rank()] = comm.agree(true);
    EXPECT_EQ(comm.traffic().agreements, 1ull);
  });
  for (const auto &r : results)
  {
    EXPECT_TRUE(r.all_ok);
    EXPECT_TRUE(r.self_ok);
    EXPECT_EQ(r.ok, results[0].ok);
    EXPECT_TRUE(r.failed().empty());
    EXPECT_TRUE(r.absent().empty());
  }
}

TEST(Agreement, NotOkVoteReachesEveryRankIdentically)
{
  const int n_ranks = 4;
  std::vector<vmpi::AgreeResult> results(n_ranks);
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    results[comm.rank()] = comm.agree(comm.rank() != 2);
  });
  for (int r = 0; r < n_ranks; ++r)
  {
    EXPECT_FALSE(results[r].all_ok);
    EXPECT_EQ(results[r].ok, results[0].ok) << "rank " << r;
    EXPECT_EQ(results[r].failed(), std::vector<int>{2});
    EXPECT_TRUE(results[r].absent().empty()) << "rank 2 is alive, only unsound";
    EXPECT_EQ(results[r].self_ok, r != 2);
  }
}

TEST(Agreement, AbsentRankIsVotedDeadByAllSurvivorsInBoundedTime)
{
  const int n_ranks = 4;
  std::vector<vmpi::AgreeResult> results(n_ranks);
  const auto start = std::chrono::steady_clock::now();
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    if (comm.rank() == 3)
      return; // never shows up
    results[comm.rank()] = comm.agree(true, 0.2);
  });
  EXPECT_LT(seconds_since(start), 5.);
  for (int r = 0; r < 3; ++r)
  {
    EXPECT_FALSE(results[r].all_ok) << "rank " << r;
    EXPECT_EQ(results[r].ok, results[0].ok) << "rank " << r;
    EXPECT_EQ(results[r].failed(), std::vector<int>{3});
    EXPECT_EQ(results[r].absent(), std::vector<int>{3});
    EXPECT_TRUE(results[r].self_ok);
  }
}

// A rank arriving after the round closed must adopt the closed verdict — in
// which it is recorded dead — not reopen the round (every reader sees the
// same verdict, the property the whole recovery protocol rests on).
TEST(Agreement, StragglerAdoptsTheClosedVerdict)
{
  const int n_ranks = 3;
  std::vector<vmpi::AgreeResult> results(n_ranks);
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    if (comm.rank() == 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    results[comm.rank()] = comm.agree(true, 0.15);
  });
  for (int r = 0; r < n_ranks; ++r)
  {
    EXPECT_EQ(results[r].ok, results[0].ok) << "rank " << r;
    EXPECT_EQ(results[r].failed(), std::vector<int>{2});
  }
  EXPECT_FALSE(results[2].self_ok) << "the straggler learns it was voted dead";
  EXPECT_TRUE(results[0].self_ok);
}

// ---------------------------------------------------------------------------
// epoch namespacing and the drain protocol
// ---------------------------------------------------------------------------

TEST(Epochs, StaleEpochMessagesAreDrainedAndCannotMatchARetry)
{
  std::atomic<unsigned long long> drained{0};
  vmpi::run(2, [&](vmpi::Communicator &comm) {
    if (comm.rank() == 0)
    {
      const double stale = 1.0, fresh = 2.0;
      comm.send(1, 7, &stale, sizeof(stale)); // epoch 0
      comm.barrier();
      comm.advance_epoch(1);
      comm.send(1, 7, &fresh, sizeof(fresh)); // epoch 1
      comm.barrier();
    }
    else
    {
      comm.barrier(); // the stale message is now queued in our mailbox
      EXPECT_EQ(comm.advance_epoch(1), 1u)
        << "advancing the epoch drains the stale message";
      comm.barrier();
      double value = 0;
      comm.recv(0, 7, &value, sizeof(value));
      EXPECT_EQ(value, 2.0) << "only the current-epoch message matches";
      drained = comm.traffic().drained;
    }
  });
  EXPECT_EQ(drained.load(), 1ull);
}

TEST(Epochs, CancelPendingAbandonsEveryQueuedMessage)
{
  vmpi::run(2, [&](vmpi::Communicator &comm) {
    if (comm.rank() == 0)
    {
      for (int k = 0; k < 3; ++k)
        comm.send(1, 20 + k, &k, sizeof(k));
      comm.barrier();
    }
    else
    {
      comm.barrier();
      EXPECT_EQ(comm.cancel_pending(), 3u);
      EXPECT_EQ(comm.traffic().drained, 3ull);
      // the mailbox really is empty: a recv now times out
      comm.set_timeout(0.1);
      int dummy = 0;
      EXPECT_THROW(comm.recv(0, 20, &dummy, sizeof(dummy)),
                   vmpi::TimeoutError);
    }
  });
}

TEST(Epochs, EpochMustNotGoBackwards)
{
  vmpi::run(1, [&](vmpi::Communicator &comm) {
    comm.advance_epoch(2);
    EXPECT_EQ(comm.epoch(), 2);
    EXPECT_THROW(comm.advance_epoch(1), std::runtime_error);
  });
}

// ---------------------------------------------------------------------------
// heartbeats
// ---------------------------------------------------------------------------

TEST(Heartbeats, MonitorSuspectsTheSilentRankOnly)
{
  const int n_ranks = 3;
  std::atomic<bool> silent_suspected{false}, peer_suspected{false};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.set_timeout(5.);
    if (comm.rank() == 2)
    {
      // silent: no traffic for much longer than the suspicion window
      std::this_thread::sleep_for(std::chrono::milliseconds(700));
      comm.barrier();
      return;
    }
    vmpi::HealthMonitor monitor(comm, 0.2);
    const int peer = 1 - comm.rank();
    const auto start = std::chrono::steady_clock::now();
    while (seconds_since(start) < 3.)
    {
      // ranks 0 and 1 keep chatting (buffered sends bump the sender's
      // heartbeat; no recv, so neither can block on the other)
      const int ping = 1;
      comm.send(peer, 99, &ping, sizeof(ping));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const std::vector<int> suspects = monitor.suspects();
      if (!suspects.empty())
      {
        if (comm.rank() == 0)
        {
          silent_suspected =
            std::find(suspects.begin(), suspects.end(), 2) != suspects.end();
          peer_suspected =
            std::find(suspects.begin(), suspects.end(), 1) != suspects.end();
        }
        break;
      }
    }
    comm.barrier();
  });
  EXPECT_TRUE(silent_suspected.load());
  EXPECT_FALSE(peer_suspected.load())
    << "a chatty peer must never be suspected";
}

// ---------------------------------------------------------------------------
// rank-death injection
// ---------------------------------------------------------------------------

TEST(KillInjection, VictimDiesAtTheConfiguredCollectiveDeterministically)
{
  for (int repeat = 0; repeat < 2; ++repeat)
  {
    resilience::FaultPlan::Config cfg;
    cfg.kill_rank = 1;
    cfg.kill_step = 2; // dies entering its third collective
    resilience::FaultPlan plan(cfg);

    std::atomic<int> completed_by_victim{-1};
    std::atomic<int> rank_failures{0};
    vmpi::run(2, [&](vmpi::Communicator &comm) {
      comm.install_fault_handler(&plan);
      comm.set_timeout(0.2);
      int completed = 0;
      try
      {
        for (int k = 0; k < 5; ++k)
        {
          comm.barrier();
          ++completed;
        }
      }
      catch (const vmpi::RankFailure &e)
      {
        EXPECT_EQ(e.rank, 1);
        EXPECT_EQ(e.failed_ranks, std::vector<int>{1});
        ++rank_failures;
      }
      catch (const vmpi::TimeoutError &)
      {
        // the survivor times out waiting for the dead rank
      }
      if (comm.rank() == 1)
        completed_by_victim = completed;
    });
    EXPECT_EQ(completed_by_victim.load(), 2) << "repeat " << repeat;
    EXPECT_EQ(rank_failures.load(), 1);
    EXPECT_EQ(plan.counts().kills, 1ull);
  }
}

TEST(KillInjection, ConfigFromEnvPicksUpKillKnobs)
{
  setenv("DGFLOW_FAULT_KILL_RANK", "3", 1);
  setenv("DGFLOW_FAULT_KILL_STEP", "17", 1);
  const auto cfg = resilience::FaultPlan::config_from_env();
  unsetenv("DGFLOW_FAULT_KILL_RANK");
  unsetenv("DGFLOW_FAULT_KILL_STEP");
  EXPECT_EQ(cfg.kill_rank, 3);
  EXPECT_EQ(cfg.kill_step, 17ull);
}

// Survivors that catch the dead rank's absence as a TimeoutError route it
// through RecoveryContext::resolve_failure and all reach the identical
// RankFailure verdict.
TEST(KillInjection, SurvivorsAgreeOnTheVictimThroughResolveFailure)
{
  const int n_ranks = 4;
  resilience::FaultPlan::Config cfg;
  cfg.kill_rank = 2;
  cfg.kill_step = 0;
  resilience::FaultPlan plan(cfg);

  std::mutex mutex;
  std::vector<std::vector<int>> verdicts;
  std::atomic<int> victim_failures{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    comm.set_timeout(0.25);
    resilience::RecoveryContext ctx(comm);
    try
    {
      comm.barrier(); // the victim dies here; survivors time out
      ctx.at_iteration_boundary(true);
    }
    catch (const vmpi::TimeoutError &)
    {
      try
      {
        ctx.resolve_failure();
        ADD_FAILURE() << "resolve_failure must convict the dead rank";
      }
      catch (const vmpi::RankFailure &e)
      {
        std::lock_guard<std::mutex> lock(mutex);
        verdicts.push_back(e.failed_ranks);
      }
    }
    catch (const vmpi::RankFailure &)
    {
      ++victim_failures; // the victim's own death
    }
  });
  EXPECT_EQ(victim_failures.load(), 1);
  ASSERT_EQ(verdicts.size(), 3u) << "every survivor reaches a verdict";
  for (const auto &v : verdicts)
    EXPECT_EQ(v, std::vector<int>{2});
}

// ---------------------------------------------------------------------------
// collective-payload corruption hardening
// ---------------------------------------------------------------------------

TEST(CollectiveCorruption, BitFlippedContributionIsDetectedByEveryRank)
{
  const int n_ranks = 4;
  resilience::FaultPlan::Config cfg;
  cfg.seed = 5;
  cfg.corrupt_collective_rate = 1.; // flip every contribution
  cfg.corrupt_bytes = 2;
  resilience::FaultPlan plan(cfg);

  std::atomic<int> detections{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    try
    {
      comm.allreduce(1.0, vmpi::Communicator::Op::sum);
      ADD_FAILURE() << "corrupted allreduce returned normally on rank "
                    << comm.rank();
    }
    catch (const vmpi::CollectiveCorruptionError &e)
    {
      EXPECT_GE(e.corrupt_source, 0);
      ++detections;
    }
  });
  EXPECT_EQ(detections.load(), n_ranks);
  EXPECT_GT(plan.counts().corrupted_collectives, 0ull);
}

// The satellite requirement on the 4-rank Poisson solve: an injected
// bit-flip in an allreduce payload must surface as a structured error —
// never as silent convergence to a wrong answer.
TEST(CollectiveCorruption, CorruptedPoissonSolveNeverConvergesSilently)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const unsigned int degree = 1;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

  Vector<double> rhs, diag;
  laplace.assemble_rhs(rhs, forcing, exact_solution);
  laplace.compute_diagonal(diag);

  resilience::FaultPlan::Config cfg;
  cfg.seed = 23;
  cfg.corrupt_collective_rate = 0.02; // rare, in-flight bit flips
  resilience::FaultPlan plan(cfg);

  std::atomic<int> detections{0}, silent_convergences{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd;
    bd.reinit(part, comm, dofs_per_cell);
    bd.copy_owned_from(rhs);
    vmpi::DistributedVector<double> ddiag(part, comm, dofs_per_cell);
    ddiag.copy_owned_from(diag);
    PreconditionJacobi<double> jd;
    jd.reinit(ddiag);
    SolverControl control;
    control.rel_tol = 1e-10;
    control.max_iterations = 2000;
    try
    {
      const auto stats = solve_cg(laplace, xd, bd, jd, control);
      if (stats.converged)
        ++silent_convergences;
    }
    catch (const vmpi::CollectiveCorruptionError &)
    {
      ++detections;
    }
  });
  ASSERT_GT(plan.counts().corrupted_collectives, 0ull)
    << "the configured rate must actually inject at this seed";
  EXPECT_EQ(detections.load(), n_ranks)
    << "every rank unwinds with the structured corruption error";
  EXPECT_EQ(silent_convergences.load(), 0);
}

// ---------------------------------------------------------------------------
// shard checkpoints
// ---------------------------------------------------------------------------

namespace
{
/// Deterministic test field: bit-exact reproducible values.
Vector<double> test_field(const std::size_t n)
{
  Vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.37 * double(i)) * 1e3 + double(i % 17);
  return v;
}

/// Writes @p global as an @p n_ranks -shard checkpoint (contiguous slices of
/// the Morton partition arithmetic) plus a manifest; returns the per-shard
/// in-memory images (buddy copies).
std::vector<std::vector<char>>
write_sharded(const std::string &dir, const Vector<double> &global,
              const int n_ranks, const std::uint64_t step = 42,
              const double time = 1.5)
{
  std::vector<std::uint64_t> checksums(n_ranks);
  std::vector<std::vector<char>> images(n_ranks);
  for (int r = 0; r < n_ranks; ++r)
  {
    const std::size_t begin = (global.size() * r) / n_ranks;
    const std::size_t end = (global.size() * (r + 1)) / n_ranks;
    Vector<double> owned(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      owned[i - begin] = global[i];
    resilience::ShardCheckpointWriter writer(dir, r, n_ranks);
    writer.write_u64(step);
    writer.write_double(time);
    writer.write_owned_slice(global.size(), begin, owned);
    auto shard = writer.close();
    checksums[r] = shard.checksum;
    images[r] = std::move(shard.image);
  }
  resilience::write_shard_manifest(dir, checksums);
  return images;
}
} // namespace

TEST(ShardCheckpoint, RestoreIsBitIdenticalAcrossRankCounts)
{
  const std::string dir = scratch_dir("shards_n_to_m");
  const Vector<double> global = test_field(997); // odd size: uneven slices
  write_sharded(dir, global, 4);

  // restoring runs re-slice the reassembled global state for their own rank
  // count; N-1 and 2N rank layouts must see bit-identical data
  for (const int restore_ranks : {3, 4, 8})
  {
    resilience::ShardCheckpointReader reader(dir);
    EXPECT_EQ(reader.n_shards(), 4);
    EXPECT_EQ(reader.read_u64(), 42ull);
    EXPECT_EQ(reader.read_double(), 1.5);
    Vector<double> restored;
    reader.read_global(restored);
    ASSERT_EQ(restored.size(), global.size());
    for (int r = 0; r < restore_ranks; ++r)
    {
      const std::size_t begin = (global.size() * r) / restore_ranks;
      const std::size_t end = (global.size() * (r + 1)) / restore_ranks;
      for (std::size_t i = begin; i < end; ++i)
      {
        const double got = restored[i], want = global[i];
        ASSERT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
          << "restore on " << restore_ranks << " ranks, dof " << i;
      }
    }
  }
}

TEST(ShardCheckpoint, ManifestMismatchNamesTheShard)
{
  const std::string dir = scratch_dir("shards_manifest");
  write_sharded(dir, test_field(100), 4);

  // replace rank1.ckpt with an internally valid shard that was never part
  // of this checkpoint: only the manifest cross-check can catch it
  {
    resilience::CheckpointWriter impostor(dir + "/" +
                                          resilience::shard_file_name(1));
    impostor.write_u64(999);
    impostor.close();
  }
  try
  {
    resilience::ShardCheckpointReader reader(dir);
    FAIL() << "stale shard must be rejected";
  }
  catch (const resilience::CheckpointError &e)
  {
    EXPECT_NE(std::string(e.what()).find("rank1.ckpt"), std::string::npos)
      << "the error must name the offending shard: " << e.what();
  }
}

TEST(ShardCheckpoint, CorruptedShardFileIsRejectedNamingTheFile)
{
  const std::string dir = scratch_dir("shards_corrupt");
  write_sharded(dir, test_field(100), 4);

  // flip one payload byte of rank2.ckpt on disk
  const std::string path = dir + "/" + resilience::shard_file_name(2);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  const char flip = 0x5A;
  f.write(&flip, 1);
  f.close();

  try
  {
    resilience::ShardCheckpointReader reader(dir);
    FAIL() << "corrupted shard must be rejected";
  }
  catch (const resilience::CheckpointError &e)
  {
    EXPECT_NE(std::string(e.what()).find("rank2.ckpt"), std::string::npos)
      << e.what();
  }
}

TEST(ShardCheckpoint, BuddyImageSubstitutesForALostShard)
{
  const std::string dir = scratch_dir("shards_buddy");
  const Vector<double> global = test_field(500);
  const auto images = write_sharded(dir, global, 4);

  // rank 2's shard dies with its rank; its buddy still holds the image
  std::filesystem::remove(dir + "/" + resilience::shard_file_name(2));
  EXPECT_THROW(resilience::ShardCheckpointReader missing(dir),
               resilience::CheckpointError);

  resilience::ShardCheckpointReader reader(dir, {{2, images[2]}});
  EXPECT_EQ(reader.read_u64(), 42ull);
  EXPECT_EQ(reader.read_double(), 1.5);
  Vector<double> restored;
  reader.read_global(restored);
  ASSERT_EQ(restored.size(), global.size());
  for (std::size_t i = 0; i < global.size(); ++i)
    ASSERT_EQ(restored[i], global[i]);
}

// Buddy replication over vmpi: every rank ships its shard image to its
// Morton neighbour; afterwards each rank holds a bit-identical copy of its
// buddy's shard.
TEST(ShardCheckpoint, BuddyReplicationOverVmpiIsBitIdentical)
{
  const std::string dir = scratch_dir("shards_vmpi");
  const Vector<double> global = test_field(256);
  const int n_ranks = 4;
  constexpr int tag_buddy = 940;

  std::vector<std::vector<char>> primary(n_ranks), received(n_ranks);
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const int rank = comm.rank();
    const std::size_t begin = (global.size() * rank) / n_ranks;
    const std::size_t end = (global.size() * (rank + 1)) / n_ranks;
    Vector<double> owned(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      owned[i - begin] = global[i];
    resilience::ShardCheckpointWriter writer(dir, rank, n_ranks);
    writer.write_owned_slice(global.size(), begin, owned);
    auto shard = writer.close();
    primary[rank] = shard.image;

    const int buddy = morton_buddy_rank(rank, n_ranks);
    comm.send_vector(buddy, tag_buddy, shard.image);
    // by symmetry we hold the copy of the rank whose buddy we are
    const int ward = (rank + n_ranks - 1) % n_ranks;
    received[rank] =
      comm.recv_vector<char>(ward, tag_buddy, 1 << 20);
  });
  for (int r = 0; r < n_ranks; ++r)
  {
    const int ward = (r + n_ranks - 1) % n_ranks;
    EXPECT_EQ(received[r], primary[ward]) << "buddy copy held by rank " << r;
    EXPECT_EQ(morton_buddy_rank(ward, n_ranks), r);
  }
}

// ---------------------------------------------------------------------------
// end to end: shrinking recovery of a killed-rank multigrid Poisson solve
// ---------------------------------------------------------------------------

// The PR's acceptance test. A 4-rank hybrid-multigrid-preconditioned CG
// Poisson solve loses rank 2 mid-solve to deterministic fault injection.
// The survivors agree on the death (RecoveryContext at the iteration
// boundaries of CG, the Chebyshev sweeps and the V-cycle), unwind, and the
// shrinking-recovery driver reruns on 3 ranks with a fresh Morton partition,
// restoring the iterate from the shard checkpoint. The final solution must
// match the fault-free serial solve to solver tolerance.
TEST(ShrinkingRecovery, KilledRankPoissonSolveCompletesOnThreeRanks)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const unsigned int degree = 3;
  const BoundaryMap bc = all_dirichlet();
  const std::string dir = scratch_dir("shrink_recovery");

  // fault-free serial reference
  MatrixFree<double>::AdditionalData ref_data;
  ref_data.degrees = {degree};
  ref_data.n_q_points_1d = {degree + 1};
  MatrixFree<double> ref_mf;
  ref_mf.reinit(mesh, geom, ref_data);
  LaplaceOperator<double> ref_laplace;
  ref_laplace.reinit(ref_mf, 0, 0, bc);
  Vector<double> rhs;
  ref_laplace.assemble_rhs(rhs, forcing, exact_solution);

  HybridMultigrid<float>::Options ref_mg_opts;
  HybridMultigrid<float> ref_mg;
  ref_mg.setup(mesh, geom, degree, bc, ref_mg_opts);
  SolverControl ref_control;
  ref_control.rel_tol = 1e-11;
  ref_control.max_iterations = 100;
  Vector<double> x_serial(ref_laplace.n_dofs());
  const auto serial = solve_cg(ref_laplace, x_serial, rhs, ref_mg, ref_control);
  ASSERT_TRUE(serial.converged);
  const std::size_t n_dofs = ref_laplace.n_dofs();

  // rank 2 dies mid-solve (a few CG iterations in) on the first attempt
  resilience::FaultPlan::Config cfg;
  cfg.kill_rank = 2;
  cfg.kill_step = 12;
  resilience::FaultPlan plan(cfg);

  Vector<double> x_final(n_dofs);
  std::atomic<int> solves_completed{0};

  resilience::DistributedRecoveryOptions opts;
  opts.min_ranks = 2;
  const auto report = resilience::run_resilient(
    n_ranks, opts,
    [&](vmpi::Communicator &comm, resilience::RecoveryContext &ctx,
        const resilience::RecoveryAttempt &attempt) {
      // the dead node does not come back: faults only on the first attempt
      if (attempt.attempt == 0)
        comm.install_fault_handler(&plan);
      comm.set_timeout(1.0);

      const int width = comm.size();
      const std::vector<int> rank_of_cell = partition_cells(mesh, width);
      const auto part = vmpi::Partitioner::cell_partitioner(
        mesh, rank_of_cell, comm.rank(), width);

      // rebuild the full distributed stack for this attempt's rank count
      MatrixFree<double>::AdditionalData data;
      data.degrees = {degree};
      data.n_q_points_1d = {degree + 1};
      data.rank_of_cell = rank_of_cell;
      data.n_ranks = width;
      MatrixFree<double> mf;
      mf.reinit(mesh, geom, data);
      LaplaceOperator<double> laplace;
      laplace.reinit(mf, 0, 0, bc);
      const unsigned int dofs_per_cell = mf.dofs_per_cell(0);

      HybridMultigrid<float>::Options mg_opts;
      mg_opts.rank_of_cell = rank_of_cell;
      mg_opts.n_ranks = width;
      HybridMultigrid<float> mg;
      mg.setup(mesh, geom, degree, bc, mg_opts);
      mg.set_recovery(&ctx);
      mg.setup_distributed(comm, part);

      vmpi::DistributedVector<double> xd(part, comm, dofs_per_cell), bd;
      bd.reinit(part, comm, dofs_per_cell);
      bd.copy_owned_from(rhs);

      if (attempt.restore)
      {
        // N->M restart: reassemble the iterate of the 4-shard checkpoint
        // and re-slice it for this attempt's width
        resilience::ShardCheckpointReader reader(dir);
        EXPECT_EQ(reader.read_u64(), 0ull);
        Vector<double> xg;
        reader.read_global(xg);
        xd.copy_owned_from(xg);
      }
      else
      {
        // shard checkpoint of the pre-solve state, with the manifest
        // written by rank 0 after gathering every shard checksum
        resilience::ShardCheckpointWriter writer(dir, comm.rank(), width);
        writer.write_u64(0); // iteration the checkpoint represents
        Vector<double> owned(xd.size());
        for (std::size_t i = 0; i < xd.size(); ++i)
          owned[i] = xd.data()[i];
        writer.write_owned_slice(n_dofs, xd.first_local_index(), owned);
        const auto shard = writer.close();
        constexpr int tag_checksum = 941;
        if (comm.rank() == 0)
        {
          std::vector<std::uint64_t> checksums(width);
          checksums[0] = shard.checksum;
          for (int r = 1; r < width; ++r)
          {
            const auto c = comm.recv_vector<std::uint64_t>(r, tag_checksum, 1);
            checksums[r] = c.at(0);
          }
          resilience::write_shard_manifest(dir, checksums);
        }
        else
          comm.send_vector(0, tag_checksum,
                           std::vector<std::uint64_t>{shard.checksum});
        comm.barrier();
      }

      SolverControl control;
      control.rel_tol = 1e-11;
      control.max_iterations = 100;
      control.recovery = &ctx;
      try
      {
        const auto stats = solve_cg(laplace, xd, bd, mg, control);
        EXPECT_TRUE(stats.converged);
      }
      catch (const vmpi::TimeoutError &)
      {
        // a peer vanished mid-exchange: convert to the collective verdict
        ctx.resolve_failure();
        throw; // transient per the verdict: let the driver retry
      }

      for (std::size_t i = 0; i < xd.size(); ++i)
        x_final[xd.first_local_index() + i] = xd.data()[i];
      ++solves_completed;
    });

  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.shrinks, 1);
  EXPECT_EQ(report.final_n_ranks, 3);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.failure_history.size(), 1u);
  EXPECT_EQ(report.failure_history[0], std::vector<int>{2});
  EXPECT_EQ(solves_completed.load(), 3) << "all three survivors completed";
  EXPECT_EQ(plan.counts().kills, 1ull);

  double diff2 = 0, ref2 = 0;
  for (std::size_t i = 0; i < n_dofs; ++i)
  {
    diff2 += (x_final[i] - x_serial[i]) * (x_final[i] - x_serial[i]);
    ref2 += x_serial[i] * x_serial[i];
  }
  EXPECT_LE(std::sqrt(diff2 / ref2), 1e-8)
    << "the recovered solution matches the fault-free one to solver "
       "tolerance";
}

// The non-death rungs of the ladder: a transient failure retries in a fresh
// epoch first, then restores from the checkpoint, without shrinking.
TEST(ShrinkingRecovery, TransientFailureClimbsRetryThenRestoreRungs)
{
  std::atomic<int> bodies{0};
  std::vector<resilience::RecoveryAttempt> attempts;
  std::mutex mutex;
  resilience::DistributedRecoveryOptions opts;
  const auto report = resilience::run_resilient(
    2, opts,
    [&](vmpi::Communicator &comm, resilience::RecoveryContext &,
        const resilience::RecoveryAttempt &attempt) {
      if (comm.rank() == 0)
      {
        std::lock_guard<std::mutex> lock(mutex);
        attempts.push_back(attempt);
      }
      ++bodies;
      if (attempt.attempt < 2)
        throw resilience::SolveAbandoned("injected transient failure", {});
    });
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(report.restores, 1);
  EXPECT_EQ(report.shrinks, 0);
  EXPECT_EQ(report.final_n_ranks, 2);
  ASSERT_EQ(attempts.size(), 3u);
  EXPECT_FALSE(attempts[0].restore);
  EXPECT_FALSE(attempts[1].restore) << "first rung: plain retry, fresh epoch";
  EXPECT_TRUE(attempts[2].restore) << "second rung: restore";
  EXPECT_EQ(attempts[1].epoch, 1);
  EXPECT_EQ(attempts[2].epoch, 2);
}

TEST(ShrinkingRecovery, LadderExhaustionRethrowsTheLastError)
{
  resilience::DistributedRecoveryOptions opts;
  opts.max_retries_per_width = 1;
  EXPECT_THROW(
    resilience::run_resilient(
      2, opts,
      [&](vmpi::Communicator &, resilience::RecoveryContext &,
          const resilience::RecoveryAttempt &) {
        throw resilience::SolveAbandoned("always failing", {});
      }),
    resilience::SolveAbandoned);
}
