// Fused solver loops and end-to-end mixed precision (ctest label
// mixed_precision; also run under DGFLOW_SANITIZE=address by
// run_benchmarks.sh): the contract-v2 fused CG and Chebyshev paths must
// match the classic separate-sweep iteration bitwise in double precision,
// serially and on 4 logical ranks; the single-precision multigrid
// preconditioner (including the float AMG coarse solve) must not change the
// outer DP iteration count by more than one on the lung geometry; and the
// single-precision ghost wire must round-trip values exactly (up to the
// float conversion), detect in-flight corruption through its checksum
// trailer, and keep the timeout/epoch semantics of the storage wire under
// fault injection.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>

#include "amg/amg.h"
#include "lung/lung_mesh.h"
#include "mesh/generators.h"
#include "mesh/partition.h"
#include "multigrid/hybrid_multigrid.h"
#include "operators/laplace_operator.h"
#include "resilience/fault_injection.h"
#include "solvers/cg.h"
#include "solvers/chebyshev.h"
#include "vmpi/distributed_vector.h"
#include "vmpi/partitioner.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

Mesh make_mesh(const unsigned int refinements)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(refinements);
  return mesh;
}

/// 3D 7-point Laplacian on an m^3 grid (for the standalone AMG checks).
SparseMatrix poisson_3d(const std::size_t m)
{
  const std::size_t n = m * m * m;
  auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  std::vector<SparseMatrix::Triplet> t;
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i)
      {
        const std::size_t r = idx(i, j, k);
        t.push_back({r, r, 6.});
        if (i > 0)
          t.push_back({r, idx(i - 1, j, k), -1.});
        if (i + 1 < m)
          t.push_back({r, idx(i + 1, j, k), -1.});
        if (j > 0)
          t.push_back({r, idx(i, j - 1, k), -1.});
        if (j + 1 < m)
          t.push_back({r, idx(i, j + 1, k), -1.});
        if (k > 0)
          t.push_back({r, idx(i, j, k - 1), -1.});
        if (k + 1 < m)
          t.push_back({r, idx(i, j, k + 1), -1.});
      }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}
} // namespace

// ---------------------------------------------------------------------------
// fused solver loops: bitwise equivalence with the classic iteration
// ---------------------------------------------------------------------------

TEST(FusedLoops, CGMatchesUnfusedBitwiseSerial)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {3};
  data.n_q_points_1d = {4};
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  static_assert(
    HookedOperatorFor<LaplaceOperator<double>, Vector<double>>,
    "the DG Laplacian must implement the contract-v2 hooked vmult");

  Vector<double> rhs;
  laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                       [](const Point &) { return 0.; });
  Vector<double> diag;
  laplace.compute_diagonal(diag);
  PreconditionJacobi<double> jacobi;
  jacobi.reinit(diag);

  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 400;

  Vector<double> x_fused(laplace.n_dofs()), x_classic(laplace.n_dofs());
  control.fuse_loops = true;
  const auto stats_fused = solve_cg(laplace, x_fused, rhs, jacobi, control);
  control.fuse_loops = false;
  const auto stats_classic =
    solve_cg(laplace, x_classic, rhs, jacobi, control);

  ASSERT_TRUE(stats_fused.converged);
  EXPECT_EQ(stats_fused.iterations, stats_classic.iterations);
  EXPECT_EQ(stats_fused.final_residual, stats_classic.final_residual);
  EXPECT_EQ(std::memcmp(x_fused.data(), x_classic.data(),
                        x_fused.size() * sizeof(double)),
            0)
    << "fused CG iterate deviates from the classic iteration";
}

TEST(FusedLoops, ChebyshevMatchesUnfusedBitwiseSerial)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  Vector<double> diag;
  laplace.compute_diagonal(diag);

  using Smoother = ChebyshevSmoother<LaplaceOperator<double>, Vector<double>>;
  ChebyshevData cheb;
  cheb.degree = 4;
  cheb.fuse_loops = true;
  Smoother fused;
  fused.reinit(laplace, diag, cheb);
  cheb.fuse_loops = false;
  Smoother classic;
  classic.reinit(laplace, diag, cheb);

  Vector<double> b(laplace.n_dofs());
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = std::sin(0.37 * double(i)) + 0.2;

  // zero initial guess (the pre-smoother) and a nonzero-guess sweep on top
  Vector<double> x_fused(laplace.n_dofs()), x_classic(laplace.n_dofs());
  fused.smooth(x_fused, b, true);
  classic.smooth(x_classic, b, true);
  EXPECT_EQ(std::memcmp(x_fused.data(), x_classic.data(),
                        x_fused.size() * sizeof(double)),
            0)
    << "fused zero-guess sweep deviates";

  fused.smooth(x_fused, b, false);
  classic.smooth(x_classic, b, false);
  EXPECT_EQ(std::memcmp(x_fused.data(), x_classic.data(),
                        x_fused.size() * sizeof(double)),
            0)
    << "fused nonzero-guess sweep deviates";
}

TEST(FusedLoops, CGAndChebyshevMatchUnfusedBitwiseOn4Ranks)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int block = mf.dofs_per_cell(0);
  Vector<double> diag;
  laplace.compute_diagonal(diag);

  using DVec = vmpi::DistributedVector<double>;
  static_assert(HookedOperatorFor<LaplaceOperator<double>, DVec>,
                "hooked vmult must cover the distributed path");

  std::atomic<int> mismatches{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    DVec b(part, comm, block), ddiag(part, comm, block);
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = std::sin(0.37 * double(b.first_local_index() + i)) + 0.2;
    ddiag.copy_owned_from(diag);

    PreconditionJacobi<double> jacobi;
    jacobi.reinit(ddiag);
    SolverControl control;
    control.rel_tol = 1e-10;
    control.max_iterations = 400;

    DVec x_fused(part, comm, block), x_classic(part, comm, block);
    control.fuse_loops = true;
    const auto sf = solve_cg(laplace, x_fused, b, jacobi, control);
    control.fuse_loops = false;
    const auto sc = solve_cg(laplace, x_classic, b, jacobi, control);
    if (sf.iterations != sc.iterations ||
        std::memcmp(x_fused.data(), x_classic.data(),
                    x_fused.size() * sizeof(double)) != 0)
      ++mismatches;

    using Smoother = ChebyshevSmoother<LaplaceOperator<double>, DVec>;
    ChebyshevData cheb;
    cheb.fuse_loops = true;
    Smoother fused;
    fused.reinit(laplace, ddiag, cheb);
    cheb.fuse_loops = false;
    Smoother classic;
    classic.reinit(laplace, ddiag, cheb);
    x_fused = 0.;
    x_classic = 0.;
    fused.smooth(x_fused, b, true);
    classic.smooth(x_classic, b, true);
    fused.smooth(x_fused, b, false);
    classic.smooth(x_classic, b, false);
    if (std::memcmp(x_fused.data(), x_classic.data(),
                    x_fused.size() * sizeof(double)) != 0)
      ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// mixed-precision multigrid: SP levels / SP AMG must not cost iterations
// ---------------------------------------------------------------------------

namespace
{
template <typename LevelNumber>
unsigned int lung_poisson_iterations(const Mesh &mesh, const Geometry &geom,
                                     const BoundaryMap &bc,
                                     const bool sp_amg)
{
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  data.geometry_degree = 1;
  data.penalty_safety = 4.;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, bc);

  HybridMultigrid<LevelNumber> mg;
  typename HybridMultigrid<LevelNumber>::Options opts;
  opts.geometry_degree = 1;
  opts.penalty_safety = 4.;
  opts.sp_amg = sp_amg;
  mg.setup(mesh, geom, 2, bc, opts);

  Vector<double> rhs, x(laplace.n_dofs());
  laplace.assemble_rhs(rhs, [](const Point &) { return 1.; },
                       [](const Point &) { return 0.; });
  SolverControl control;
  control.rel_tol = 1e-8;
  control.max_iterations = 2000;
  const auto stats = solve_cg(laplace, x, rhs, mg, control);
  EXPECT_TRUE(stats.converged);
  return stats.iterations;
}
} // namespace

TEST(MixedPrecisionMG, LungIterationCountsWithinOneOfDouble)
{
  AirwayTreeParameters prm;
  prm.n_generations = 2;
  const LungMesh lung = build_lung_mesh(AirwayTree::generate(prm));
  BoundaryMap bc;
  bc.set(LungMesh::wall_id, BoundaryType::neumann);
  bc.set(LungMesh::inlet_id, BoundaryType::dirichlet);
  for (const auto id : lung.outlet_ids)
    bc.set(id, BoundaryType::dirichlet);
  Mesh mesh(lung.coarse);
  TrilinearGeometry geom(mesh.coarse());

  const unsigned int its_dp =
    lung_poisson_iterations<double>(mesh, geom, bc, false);
  const unsigned int its_sp =
    lung_poisson_iterations<float>(mesh, geom, bc, false);
  const unsigned int its_sp_amg =
    lung_poisson_iterations<float>(mesh, geom, bc, true);

  EXPECT_LE(std::abs(int(its_sp) - int(its_dp)), 1)
    << "SP V-cycle costs iterations: dp=" << its_dp << " sp=" << its_sp;
  EXPECT_LE(std::abs(int(its_sp_amg) - int(its_dp)), 1)
    << "SP AMG coarse solve costs iterations: dp=" << its_dp
    << " sp_amg=" << its_sp_amg;
}

TEST(MixedPrecisionMG, SPAMGVcycleTracksDoubleVcycle)
{
  AMG amg;
  amg.setup(poisson_3d(8));
  EXPECT_FALSE(amg.single_precision());
  amg.enable_single_precision();
  ASSERT_TRUE(amg.single_precision());

  const std::size_t n = 8 * 8 * 8;
  Vector<double> bd(n), xd(n);
  Vector<float> bf(n), xf(n);
  for (std::size_t i = 0; i < n; ++i)
  {
    bd[i] = std::sin(0.13 * double(i));
    bf[i] = float(bd[i]);
  }
  amg.vcycle(xd, bd);
  amg.vcycle(xf, bf);

  // one float V-cycle must agree with the double one to float accuracy,
  // relative to the iterate scale
  double scale = 0.;
  for (std::size_t i = 0; i < n; ++i)
    scale = std::max(scale, std::abs(xd[i]));
  ASSERT_GT(scale, 0.);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(double(xf[i]), xd[i], 1e-4 * scale) << "entry " << i;
}

TEST(MixedPrecisionMG, SPAMGSolvesToFloatLevelResidual)
{
  AMG amg;
  amg.setup(poisson_3d(6));
  amg.enable_single_precision();

  const std::size_t n = 6 * 6 * 6;
  Vector<float> b(n), x(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = float(std::cos(0.29 * double(i)));

  for (unsigned int cycle = 0; cycle < 30; ++cycle)
    amg.vcycle(x, b);

  // residual through the double operator: the float cycles must have
  // reduced it to the float roundoff scale of the problem
  Vector<double> xd(n), bd(n), rd;
  for (std::size_t i = 0; i < n; ++i)
  {
    xd[i] = double(x[i]);
    bd[i] = double(b[i]);
  }
  const SparseMatrix A = poisson_3d(6);
  A.vmult(rd, xd);
  rd.sadd(-1., 1., bd);
  EXPECT_LT(double(rd.l2_norm()), 1e-4 * double(bd.l2_norm()));
}

// ---------------------------------------------------------------------------
// single-precision ghost wire: round-trip, checksum, fault semantics
// ---------------------------------------------------------------------------

TEST(SPGhostWire, GhostRoundTripMatchesStorageWireUpToFloat)
{
  const Mesh mesh = make_mesh(1);
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);
  const unsigned int block = 3;

  std::atomic<int> mismatches{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, block),
      w(part, comm, block);
    for (std::size_t i = 0; i < v.size(); ++i)
    {
      // values with a fractional part that float actually rounds
      v[i] = 1. / 3. + 1e-3 * double(v.first_local_index() + i);
      w[i] = v[i];
    }
    w.set_wire_precision(vmpi::WirePrecision::single);
    v.update_ghost_values();
    w.update_ghost_values();
    for (std::size_t i = 0; i < v.ghost_size(); ++i)
    {
      const double expected = double(float(v[v.size() + i]));
      if (w[w.size() + i] != expected)
        ++mismatches;
    }

    // compress_add back: the float wire accumulates the float-rounded
    // ghost contributions
    vmpi::DistributedVector<double> cv(part, comm, block),
      cw(part, comm, block);
    cv = 0.;
    cw = 0.;
    cw.set_wire_precision(vmpi::WirePrecision::single);
    for (std::size_t i = 0; i < cv.ghost_size(); ++i)
    {
      cv[cv.size() + i] = 0.1 + 1e-4 * double(i);
      cw[cw.size() + i] = cv[cv.size() + i];
    }
    cv.compress_add();
    cw.compress_add();
    for (std::size_t i = 0; i < cv.size(); ++i)
    {
      // both wires accumulate the same set of contributions; the float
      // wire's terms are individually float-rounded
      const double tol = 1e-6 * (1. + std::abs(cv[i]));
      if (std::abs(cw[i] - cv[i]) > tol)
        ++mismatches;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SPGhostWire, ChecksumDetectsInFlightCorruption)
{
  const Mesh mesh = make_mesh(1);
  const int n_ranks = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  resilience::FaultPlan::Config cfg;
  cfg.corrupt_rate = 1.; // flip bytes in every message payload
  cfg.corrupt_bytes = 2;
  resilience::FaultPlan plan(cfg);

  std::atomic<int> detections{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, 2);
    v = 1.;
    v.set_wire_precision(vmpi::WirePrecision::single);
    try
    {
      v.update_ghost_values();
      ADD_FAILURE() << "corrupted single-precision ghost payload was "
                       "accepted on rank "
                    << comm.rank();
    }
    catch (const vmpi::GhostCorruptionError &)
    {
      ++detections;
    }
  });
  // every rank with an inbound ghost message must detect the corruption
  EXPECT_EQ(detections.load(), n_ranks);
  EXPECT_GT(plan.counts().corrupted, 0ull);
}

TEST(SPGhostWire, DroppedMessageStillSurfacesAsTimeout)
{
  // the single wire must preserve the bounded-wait epoch protocol: a lost
  // payload is a TimeoutError (like the storage wire), never a hang or a
  // checksum error on garbage
  const Mesh mesh = make_mesh(1);
  const int n_ranks = 2;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  resilience::FaultPlan::Config cfg;
  cfg.drop_rate = 1.;
  resilience::FaultPlan plan(cfg);

  std::atomic<int> timeouts{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    comm.set_timeout(0.2);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, 2);
    v = 1.;
    v.set_wire_precision(vmpi::WirePrecision::single);
    try
    {
      v.update_ghost_values();
    }
    catch (const vmpi::TimeoutError &)
    {
      ++timeouts;
    }
  });
  EXPECT_EQ(timeouts.load(), n_ranks);
}

TEST(SPGhostWire, DelayAndReorderDoNotCorruptPayloads)
{
  // non-lossy faults: delayed/reordered float payloads must still verify
  // and land in the right slots across repeated exchanges
  const Mesh mesh = make_mesh(1);
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  resilience::FaultPlan::Config cfg;
  cfg.delay_rate = 0.4;
  cfg.delay_seconds = 2e-3;
  cfg.reorder_rate = 0.4;
  resilience::FaultPlan plan(cfg);

  std::atomic<int> mismatches{0};
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    comm.install_fault_handler(&plan);
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> v(part, comm, 2);
    v.set_wire_precision(vmpi::WirePrecision::single);
    for (unsigned int round = 0; round < 20; ++round)
    {
      for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = double(round) + 0.25 + 1e-3 * double(i % 97);
      v.update_ghost_values();
      for (std::size_t i = 0; i < v.ghost_size(); ++i)
      {
        const double got = v[v.size() + i];
        // every payload scalar of this round lies in [round, round+1)
        if (!(got >= double(round) && got < double(round) + 1.))
          ++mismatches;
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SPGhostWire, SolveWithSingleWireConvergesLikeStorageWire)
{
  const Mesh mesh = make_mesh(2);
  TrilinearGeometry geom(mesh.coarse());
  const int n_ranks = 4;
  const std::vector<int> rank_of_cell = partition_cells(mesh, n_ranks);

  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  data.rank_of_cell = rank_of_cell;
  data.n_ranks = n_ranks;
  MatrixFree<double> mf;
  mf.reinit(mesh, geom, data);
  LaplaceOperator<double> laplace;
  laplace.reinit(mf, 0, 0, all_dirichlet());
  const unsigned int block = mf.dofs_per_cell(0);
  Vector<double> diag;
  laplace.compute_diagonal(diag);

  unsigned int its_storage = 0, its_single = 0;
  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const auto part = vmpi::Partitioner::cell_partitioner(
      mesh, rank_of_cell, comm.rank(), n_ranks);
    vmpi::DistributedVector<double> b(part, comm, block),
      ddiag(part, comm, block);
    b = 1.;
    ddiag.copy_owned_from(diag);
    PreconditionJacobi<double> jacobi;
    jacobi.reinit(ddiag);
    SolverControl control;
    control.rel_tol = 1e-8;
    control.max_iterations = 1000;

    for (const auto wire :
         {vmpi::WirePrecision::storage, vmpi::WirePrecision::single})
    {
      vmpi::DistributedVector<double> x(part, comm, block);
      x.set_wire_precision(wire);
      b.set_wire_precision(wire);
      const auto stats = solve_cg(laplace, x, b, jacobi, control);
      EXPECT_TRUE(stats.converged);
      if (comm.rank() == 0)
        (wire == vmpi::WirePrecision::storage ? its_storage : its_single) =
          stats.iterations;
    }
  });
  // float ghost payloads perturb the operator slightly; the Krylov
  // iteration count must stay essentially unchanged
  EXPECT_LE(std::abs(int(its_single) - int(its_storage)), 2)
    << "storage=" << its_storage << " single=" << its_single;
}
