#include <gtest/gtest.h>

#include <cmath>

#include "solvers/cg.h"
#include "vmpi/distributed.h"

using namespace dgflow;

namespace
{
SparseMatrix poisson_3d(const std::size_t m)
{
  const std::size_t n = m * m * m;
  auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  std::vector<SparseMatrix::Triplet> t;
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i)
      {
        const std::size_t r = idx(i, j, k);
        t.push_back({r, r, 6.});
        if (i > 0)
          t.push_back({r, idx(i - 1, j, k), -1.});
        if (i + 1 < m)
          t.push_back({r, idx(i + 1, j, k), -1.});
        if (j > 0)
          t.push_back({r, idx(i, j - 1, k), -1.});
        if (j + 1 < m)
          t.push_back({r, idx(i, j + 1, k), -1.});
        if (k > 0)
          t.push_back({r, idx(i, j, k - 1), -1.});
        if (k + 1 < m)
          t.push_back({r, idx(i, j, k + 1), -1.});
      }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}
} // namespace

TEST(DistributedCSRTest, VmultMatchesSerial)
{
  const SparseMatrix A = poisson_3d(6);
  const std::size_t n = A.n_rows();
  Vector<double> x(n), y_serial;
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(0.37 * double(i));
  A.vmult(y_serial, x);

  for (const int n_ranks : {2, 4, 7})
  {
    Vector<double> y_dist(n);
    vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
      vmpi::DistributedCSR dist(comm, A);
      vmpi::DistributedVector<double> xl, yl;
      dist.initialize_vector(xl);
      xl.copy_owned_from(x);
      dist.vmult(yl, xl);
      for (std::size_t i = 0; i < dist.n_local(); ++i)
        y_dist[dist.row_begin() + i] = yl.data()[i]; // disjoint rows: no race
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(y_dist[i], y_serial[i], 1e-12)
        << "ranks " << n_ranks << " row " << i;
  }
}

TEST(DistributedCSRTest, DistributedDotMatchesSerial)
{
  const SparseMatrix A = poisson_3d(4);
  const std::size_t n = A.n_rows();
  Vector<double> a(n), b(n);
  double serial = 0;
  for (std::size_t i = 0; i < n; ++i)
  {
    a[i] = 0.1 * double(i % 13);
    b[i] = std::cos(0.2 * double(i));
    serial += a[i] * b[i];
  }
  vmpi::run(3, [&](vmpi::Communicator &comm) {
    vmpi::DistributedCSR dist(comm, A);
    vmpi::DistributedVector<double> al, bl;
    dist.initialize_vector(al);
    dist.initialize_vector(bl);
    al.copy_owned_from(a);
    bl.copy_owned_from(b);
    EXPECT_NEAR(al.dot(bl), serial, 1e-12);
    EXPECT_NEAR(bl.l2_norm(), b.l2_norm(), 1e-12);
  });
}

TEST(DistributedCGTest, SolutionAndIterationsMatchSerialCG)
{
  const SparseMatrix A = poisson_3d(8);
  const std::size_t n = A.n_rows();
  Vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = 1. + 0.01 * double(i % 29);

  // serial reference
  Vector<double> x_serial(n);
  PreconditionIdentity id;
  SolverControl ctrl;
  ctrl.rel_tol = 1e-10;
  ctrl.max_iterations = 500;
  const auto serial = solve_cg(A, x_serial, b, id, ctrl);
  ASSERT_TRUE(serial.converged);

  // the same generic solve_cg runs the distributed solve: dot products
  // reduce over ranks, the operator exchanges ghosts internally
  Vector<double> x_dist(n);
  unsigned int dist_iterations = 0;
  vmpi::run(4, [&](vmpi::Communicator &comm) {
    vmpi::DistributedCSR dist(comm, A);
    vmpi::DistributedVector<double> xl, bl;
    dist.initialize_vector(xl);
    dist.initialize_vector(bl);
    bl.copy_owned_from(b);
    PreconditionIdentity idl;
    const auto stats = solve_cg(dist, xl, bl, idl, ctrl);
    EXPECT_TRUE(stats.converged);
    if (comm.rank() == 0)
      dist_iterations = stats.iterations;
    for (std::size_t i = 0; i < dist.n_local(); ++i)
      x_dist[dist.row_begin() + i] = xl.data()[i];
  });

  // same Krylov process in exact arithmetic: iteration counts within 1-2
  EXPECT_NEAR(double(dist_iterations), double(serial.iterations), 2.);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(x_dist[i], x_serial[i], 1e-7 * (1. + std::abs(x_serial[i])));
}
