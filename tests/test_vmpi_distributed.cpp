#include <gtest/gtest.h>

#include <cmath>

#include "solvers/cg.h"
#include "vmpi/distributed.h"

using namespace dgflow;

namespace
{
SparseMatrix poisson_3d(const std::size_t m)
{
  const std::size_t n = m * m * m;
  auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  std::vector<SparseMatrix::Triplet> t;
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i)
      {
        const std::size_t r = idx(i, j, k);
        t.push_back({r, r, 6.});
        if (i > 0)
          t.push_back({r, idx(i - 1, j, k), -1.});
        if (i + 1 < m)
          t.push_back({r, idx(i + 1, j, k), -1.});
        if (j > 0)
          t.push_back({r, idx(i, j - 1, k), -1.});
        if (j + 1 < m)
          t.push_back({r, idx(i, j + 1, k), -1.});
        if (k > 0)
          t.push_back({r, idx(i, j, k - 1), -1.});
        if (k + 1 < m)
          t.push_back({r, idx(i, j, k + 1), -1.});
      }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}
} // namespace

TEST(DistributedCSRTest, VmultMatchesSerial)
{
  const SparseMatrix A = poisson_3d(6);
  const std::size_t n = A.n_rows();
  Vector<double> x(n), y_serial;
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(0.37 * double(i));
  A.vmult(y_serial, x);

  for (const int n_ranks : {2, 4, 7})
  {
    Vector<double> y_dist(n);
    vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
      vmpi::DistributedCSR dist(comm, A);
      Vector<double> x_local(dist.n_local()), y_local;
      for (std::size_t i = 0; i < dist.n_local(); ++i)
        x_local[i] = x[dist.row_begin() + i];
      dist.vmult(y_local, x_local);
      for (std::size_t i = 0; i < dist.n_local(); ++i)
        y_dist[dist.row_begin() + i] = y_local[i]; // disjoint rows: no race
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(y_dist[i], y_serial[i], 1e-12)
        << "ranks " << n_ranks << " row " << i;
  }
}

TEST(DistributedCSRTest, DistributedDotMatchesSerial)
{
  const SparseMatrix A = poisson_3d(4);
  const std::size_t n = A.n_rows();
  Vector<double> a(n), b(n);
  double serial = 0;
  for (std::size_t i = 0; i < n; ++i)
  {
    a[i] = 0.1 * double(i % 13);
    b[i] = std::cos(0.2 * double(i));
    serial += a[i] * b[i];
  }
  vmpi::run(3, [&](vmpi::Communicator &comm) {
    vmpi::DistributedCSR dist(comm, A);
    Vector<double> al(dist.n_local()), bl(dist.n_local());
    for (std::size_t i = 0; i < dist.n_local(); ++i)
    {
      al[i] = a[dist.row_begin() + i];
      bl[i] = b[dist.row_begin() + i];
    }
    EXPECT_NEAR(dist.dot(al, bl), serial, 1e-12);
  });
}

TEST(DistributedCGTest, SolutionAndIterationsMatchSerialCG)
{
  const SparseMatrix A = poisson_3d(8);
  const std::size_t n = A.n_rows();
  Vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = 1. + 0.01 * double(i % 29);

  // serial reference
  Vector<double> x_serial(n);
  PreconditionIdentity id;
  SolverControl ctrl;
  ctrl.rel_tol = 1e-10;
  ctrl.max_iterations = 500;
  const auto serial = solve_cg(A, x_serial, b, id, ctrl);
  ASSERT_TRUE(serial.converged);

  Vector<double> x_dist(n);
  unsigned int dist_iterations = 0;
  vmpi::run(4, [&](vmpi::Communicator &comm) {
    vmpi::DistributedCSR dist(comm, A);
    Vector<double> xl(dist.n_local()), bl(dist.n_local());
    for (std::size_t i = 0; i < dist.n_local(); ++i)
      bl[i] = b[dist.row_begin() + i];
    const unsigned int its = vmpi::distributed_cg(dist, xl, bl, 1e-10, 500);
    if (comm.rank() == 0)
      dist_iterations = its;
    for (std::size_t i = 0; i < dist.n_local(); ++i)
      x_dist[dist.row_begin() + i] = xl[i];
  });

  // same Krylov process in exact arithmetic: iteration counts within 1-2
  EXPECT_NEAR(double(dist_iterations), double(serial.iterations), 2.);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(x_dist[i], x_serial[i], 1e-7 * (1. + std::abs(x_serial[i])));
}
