// The I/O-fault-tolerant checkpoint pipeline (ctest label io_resilience;
// also run under DGFLOW_SANITIZE=thread by run_benchmarks.sh): the CkptIo
// filesystem shim with deterministic fault injection (short write, torn
// write, ENOSPC, EIO, slow disk), the durable rename-publish protocol, the
// multi-generation ring with checksummed HEAD and fall-back recovery scan,
// the asynchronous background writer with back-pressure and drain, the
// Young/Daly checkpoint scheduler, shard reassembly under every corruption
// class, and the end-to-end torn-write + rank-kill restart.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "concurrency/thread_pool.h"
#include "incns/analytic_flows.h"
#include "incns/solver.h"
#include "lung/lung_application.h"
#include "mesh/generators.h"
#include "resilience/ckpt_io.h"
#include "resilience/ckpt_scheduler.h"
#include "resilience/ckpt_store.h"
#include "resilience/distributed_recovery.h"
#include "resilience/fault_injection.h"
#include "resilience/shard_checkpoint.h"

using namespace dgflow;
using resilience::CkptIo;

namespace
{
/// Unique scratch directory for a test case (removed and recreated).
std::string scratch_dir(const std::string &name)
{
  const std::string dir =
    (std::filesystem::temp_directory_path() / ("dgflow_io_" + name)).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<char> slurp(const std::string &path)
{
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string &path, const std::vector<char> &bytes)
{
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Installs a fault plan on the CkptIo shim for the scope of a test and
/// guarantees removal (a leaked handler would inject faults into every
/// later test in the process).
class ScopedIoFaults
{
public:
  explicit ScopedIoFaults(resilience::FaultPlan &plan)
  {
    CkptIo::instance().install_fault_handler(&plan);
  }
  ~ScopedIoFaults() { CkptIo::instance().install_fault_handler(nullptr); }
};

/// A scripted fault oracle for shim unit tests (the seeded FaultPlan is
/// exercised separately): returns the configured fault on every operation.
class ScriptedFaults : public resilience::IoFaultHandler
{
public:
  resilience::IoWriteFault write_fault;
  resilience::IoReadFault read_fault;

  resilience::IoWriteFault on_ckpt_write(const std::string &,
                                         const std::size_t,
                                         unsigned long long) override
  {
    return write_fault;
  }
  resilience::IoReadFault on_ckpt_read(const std::string &,
                                       unsigned long long) override
  {
    return read_fault;
  }
};

class ScopedScriptedFaults
{
public:
  explicit ScopedScriptedFaults(ScriptedFaults &handler)
  {
    CkptIo::instance().install_fault_handler(&handler);
  }
  ~ScopedScriptedFaults() { CkptIo::instance().install_fault_handler(nullptr); }
};

FlowBoundaryMap ethier_steinman_bc(const EthierSteinman &es)
{
  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [es](const Point &p, double t) { return es.pressure(p, t); };
      b.backflow_stabilization = false;
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [es](const Point &p, double t) { return es.velocity(p, t); };
      b.velocity_dt = [es](const Point &p, double t) {
        return es.velocity_dt(p, t);
      };
    }
    bc[id] = b;
  }
  return bc;
}

void setup_es(INSSolver<double> &solver, const Mesh &mesh,
              const Geometry &geom, const EthierSteinman &es)
{
  INSSolver<double>::Parameters prm;
  prm.degree = 3;
  prm.viscosity = es.nu;
  prm.cfl = 0.2;
  prm.rel_tol_pressure = 1e-8;
  prm.rel_tol_viscous = 1e-8;
  prm.rel_tol_projection = 1e-8;
  solver.setup(mesh, geom, ethier_steinman_bc(es), prm);
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });
}

/// One committed single-file generation containing the given payload value.
void write_generation(resilience::GenerationStore &store, const double value)
{
  const std::uint64_t id = store.allocate_generation();
  const std::string staging = store.create_staging(id);
  resilience::CheckpointWriter writer("state.ckpt");
  writer.write_double(value);
  const std::vector<char> image = writer.encode();
  CkptIo::instance().write_file_atomic(staging + "/state.ckpt", image.data(),
                                       image.size());
  store.commit_generation(id);
}

double read_generation_value(const resilience::GenerationStore &store,
                             const std::uint64_t id)
{
  resilience::CheckpointReader reader(store.generation_directory(id) +
                                      "/state.ckpt");
  return reader.read_double();
}
} // namespace

// ---------------------------------------------------------------------------
// the CkptIo shim: durability protocol and injected fault classes
// ---------------------------------------------------------------------------

// Satellite regression: CheckpointWriter used to publish via bare rename —
// no fsync of the data file, none of the parent directory — so a power loss
// after the rename could surface an empty/torn "published" checkpoint.
// Every close() must now perform the full durable protocol through the shim.
TEST(CkptIoShim, CheckpointClosePerformsTheFullDurabilityProtocol)
{
  const std::string dir = scratch_dir("durability");
  const auto before = CkptIo::instance().stats();
  {
    resilience::CheckpointWriter writer(dir + "/a.ckpt");
    writer.write_u64(7);
    writer.close();
  }
  const auto after = CkptIo::instance().stats();
  EXPECT_EQ(after.writes, before.writes + 1);
  EXPECT_EQ(after.file_fsyncs, before.file_fsyncs + 1)
    << "the data file must be fsynced before the rename";
  EXPECT_EQ(after.dir_fsyncs, before.dir_fsyncs + 1)
    << "the parent directory must be fsynced after the rename";
  EXPECT_EQ(after.renames, before.renames + 1);
  EXPECT_FALSE(CkptIo::instance().exists(dir + "/a.ckpt.tmp"))
    << "the staging name must not survive a successful publish";
  resilience::CheckpointReader reader(dir + "/a.ckpt");
  EXPECT_EQ(reader.read_u64(), 7ull);
}

TEST(CkptIoShim, NonDurableModeSkipsTheFsyncsButStaysAtomic)
{
  const std::string dir = scratch_dir("nondurable");
  const auto before = CkptIo::instance().stats();
  resilience::CheckpointWriter writer(dir + "/a.ckpt");
  writer.set_durable(false);
  writer.write_u64(1);
  writer.close();
  const auto after = CkptIo::instance().stats();
  EXPECT_EQ(after.file_fsyncs, before.file_fsyncs);
  EXPECT_EQ(after.dir_fsyncs, before.dir_fsyncs);
  EXPECT_EQ(after.renames, before.renames + 1);
  EXPECT_TRUE(CkptIo::instance().exists(dir + "/a.ckpt"));
}

TEST(CkptIoShim, ShortWriteFailsStructuredAndNeverTouchesThePublishedName)
{
  const std::string dir = scratch_dir("short_write");
  ScriptedFaults faults;
  faults.write_fault.short_write_at = 10;
  ScopedScriptedFaults scope(faults);

  resilience::CheckpointWriter writer(dir + "/a.ckpt");
  writer.write_u64(42);
  try
  {
    writer.close();
    FAIL() << "a short write must surface as a structured error";
  }
  catch (const resilience::CkptIoError &e)
  {
    EXPECT_NE(std::string(e.what()).find("short write"), std::string::npos)
      << e.what();
  }
  EXPECT_FALSE(CkptIo::instance().exists(dir + "/a.ckpt"))
    << "a failed write must never publish";
  EXPECT_TRUE(CkptIo::instance().exists(dir + "/a.ckpt.tmp"))
    << "the truncated tmp file stays behind for startup GC";
  EXPECT_EQ(slurp(dir + "/a.ckpt.tmp").size(), 10u);
}

TEST(CkptIoShim, EnospcFailsBeforeAnyByteReachesDisk)
{
  const std::string dir = scratch_dir("enospc");
  ScriptedFaults faults;
  faults.write_fault.enospc = true;
  ScopedScriptedFaults scope(faults);

  resilience::CheckpointWriter writer(dir + "/a.ckpt");
  writer.write_u64(42);
  try
  {
    writer.close();
    FAIL() << "ENOSPC must surface as a structured error";
  }
  catch (const resilience::CkptIoError &e)
  {
    EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos)
      << e.what();
  }
  EXPECT_FALSE(CkptIo::instance().exists(dir + "/a.ckpt"));
  EXPECT_FALSE(CkptIo::instance().exists(dir + "/a.ckpt.tmp"));
}

// The lying-disk model: the write reports success but only a prefix reached
// the platter. Nothing in the write path can see this — exactly why
// recovery verifies checksums before trusting any generation.
TEST(CkptIoShim, TornWriteReportsSuccessButVerificationCatchesTheTear)
{
  const std::string dir = scratch_dir("torn_write");
  {
    ScriptedFaults faults;
    faults.write_fault.torn_write_at = 12;
    ScopedScriptedFaults scope(faults);
    resilience::CheckpointWriter writer(dir + "/a.ckpt");
    writer.write_u64(42);
    EXPECT_NO_THROW(writer.close()) << "the torn write lies about success";
  }
  EXPECT_TRUE(CkptIo::instance().exists(dir + "/a.ckpt"))
    << "the torn file publishes under the final name";
  EXPECT_EQ(slurp(dir + "/a.ckpt").size(), 12u);
  EXPECT_THROW(resilience::CheckpointReader reader(dir + "/a.ckpt"),
               resilience::CheckpointError);
}

TEST(CkptIoShim, InjectedReadErrorIsStructured)
{
  const std::string dir = scratch_dir("read_eio");
  {
    resilience::CheckpointWriter writer(dir + "/a.ckpt");
    writer.write_u64(1);
    writer.close();
  }
  ScriptedFaults faults;
  faults.read_fault.eio = true;
  ScopedScriptedFaults scope(faults);
  try
  {
    resilience::CheckpointReader reader(dir + "/a.ckpt");
    FAIL() << "an injected EIO must surface as a structured error";
  }
  catch (const resilience::CkptIoError &e)
  {
    EXPECT_NE(std::string(e.what()).find("EIO"), std::string::npos)
      << e.what();
  }
}

TEST(CkptIoShim, SlowDiskStallInjectsLatency)
{
  const std::string dir = scratch_dir("stall");
  ScriptedFaults faults;
  faults.write_fault.stall_seconds = 0.05;
  ScopedScriptedFaults scope(faults);
  Timer t;
  resilience::CheckpointWriter writer(dir + "/a.ckpt");
  writer.write_u64(1);
  writer.close();
  EXPECT_GE(t.seconds(), 0.04);
}

// ---------------------------------------------------------------------------
// the seeded FaultPlan as I/O fault oracle
// ---------------------------------------------------------------------------

TEST(IoFaultPlan, EnvKnobsParseStrictly)
{
  setenv("DGFLOW_FAULT_IO_TORN_WRITE", "0.25", 1);
  setenv("DGFLOW_FAULT_IO_ENOSPC", "0.5", 1);
  setenv("DGFLOW_FAULT_IO_STALL_MS", "7", 1);
  setenv("DGFLOW_FAULT_IO_PATH", "gen000002", 1);
  auto cfg = resilience::FaultPlan::config_from_env();
  EXPECT_EQ(cfg.io_torn_write_rate, 0.25);
  EXPECT_EQ(cfg.io_enospc_rate, 0.5);
  EXPECT_EQ(cfg.io_stall_seconds, 7e-3);
  EXPECT_EQ(cfg.io_path_filter, "gen000002");
  unsetenv("DGFLOW_FAULT_IO_ENOSPC");
  unsetenv("DGFLOW_FAULT_IO_STALL_MS");
  unsetenv("DGFLOW_FAULT_IO_PATH");

  // a malformed or out-of-range value throws instead of becoming 0 and
  // vacuously passing whatever test relied on it
  setenv("DGFLOW_FAULT_IO_TORN_WRITE", "1.5", 1);
  EXPECT_THROW(resilience::FaultPlan::config_from_env(), EnvVarError);
  setenv("DGFLOW_FAULT_IO_TORN_WRITE", "banana", 1);
  EXPECT_THROW(resilience::FaultPlan::config_from_env(), EnvVarError);
  unsetenv("DGFLOW_FAULT_IO_TORN_WRITE");
}

TEST(IoFaultPlan, DecisionsAreDeterministicAndScopedByThePathFilter)
{
  resilience::FaultPlan::Config cfg;
  cfg.seed = 11;
  cfg.io_torn_write_rate = 1.;
  cfg.io_path_filter = "gen000002";
  resilience::FaultPlan a(cfg), b(cfg);

  // the filtered path draws a fault, and the same (path, seq) draws the
  // same truncation offset on an independent plan with the same seed
  const auto fa = a.on_ckpt_write("/x/gen000002/rank0.ckpt", 1000, 0);
  const auto fb = b.on_ckpt_write("/x/gen000002/rank0.ckpt", 1000, 0);
  EXPECT_GE(fa.torn_write_at, 0);
  EXPECT_EQ(fa.torn_write_at, fb.torn_write_at);
  EXPECT_LT(fa.torn_write_at, 1000);

  // a non-matching path is never a candidate, whatever the rate
  const auto other = a.on_ckpt_write("/x/gen000001/rank0.ckpt", 1000, 0);
  EXPECT_EQ(other.torn_write_at, -1);
  EXPECT_FALSE(other.enospc);
  EXPECT_EQ(a.counts().io_torn_writes, 1ull);
}

// ---------------------------------------------------------------------------
// the generation ring
// ---------------------------------------------------------------------------

TEST(GenerationRing, CommitPublishesHeadAndPrunesBeyondTheRing)
{
  const std::string root = scratch_dir("ring");
  resilience::GenerationStore::Options opts;
  opts.keep_generations = 3;
  resilience::GenerationStore store(root, opts);
  for (int g = 0; g < 5; ++g)
    write_generation(store, double(g));

  const std::vector<std::uint64_t> kept = store.generations();
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{2, 3, 4}))
    << "only the newest keep_generations survive";
  const auto newest = store.newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 4ull);
  EXPECT_EQ(read_generation_value(store, *newest), 4.);
  EXPECT_TRUE(CkptIo::instance().exists(root + "/HEAD.ckpt"));
}

TEST(GenerationRing, RecoveryFallsBackGenerationByGeneration)
{
  const std::string root = scratch_dir("fallback");
  resilience::GenerationStore store(root, {});
  for (int g = 0; g < 3; ++g)
    write_generation(store, double(g));

  const auto corrupt = [&](const std::uint64_t id) {
    const std::string path = store.generation_directory(id) + "/state.ckpt";
    std::vector<char> bytes = slurp(path);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
    spit(path, bytes);
  };

  corrupt(2);
  auto newest = store.newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 1ull) << "a corrupted newest generation is skipped";
  corrupt(1);
  newest = store.newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 0ull);
  corrupt(0);
  EXPECT_FALSE(store.newest_valid_generation().has_value())
    << "no generation survives verification";
}

TEST(GenerationRing, CorruptedHeadOnlyCostsTheScanNeverTheAnswer)
{
  const std::string root = scratch_dir("bad_head");
  resilience::GenerationStore store(root, {});
  write_generation(store, 1.);
  write_generation(store, 2.);

  std::vector<char> head = slurp(root + "/HEAD.ckpt");
  head.back() = static_cast<char>(head.back() ^ 0x01);
  spit(root + "/HEAD.ckpt", head);

  const auto newest = store.newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 1ull)
    << "a torn HEAD is detected by its checksum and ignored";
}

// Satellite: a crashed half-written generation (staging directory that never
// committed) and stale .tmp files are pruned on writer startup and never
// considered by the recovery scan.
TEST(GenerationRing, StartupGcPrunesHalfWrittenGenerations)
{
  const std::string root = scratch_dir("gc");
  {
    resilience::GenerationStore store(root, {});
    write_generation(store, 5.);
    // a crash mid-generation: staging directory with a partial file ...
    const std::string staging = store.create_staging(77);
    spit(staging + "/state.ckpt", {'p', 'a', 'r', 't', 'i', 'a', 'l'});
    // ... and a torn single-file publish attempt
    spit(root + "/HEAD.ckpt.tmp", {'x'});
  }

  resilience::GenerationStore reopened(root, {});
  EXPECT_FALSE(CkptIo::instance().exists(root + "/gen000077.tmp"));
  EXPECT_FALSE(CkptIo::instance().exists(root + "/HEAD.ckpt.tmp"));
  EXPECT_EQ(reopened.generations(), std::vector<std::uint64_t>{0})
    << "only the committed generation survives";
  const auto newest = reopened.newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 0ull);
  EXPECT_GE(reopened.allocate_generation(), 1ull)
    << "numbering resumes after the newest survivor";
}

// ---------------------------------------------------------------------------
// the asynchronous writer
// ---------------------------------------------------------------------------

TEST(AsyncWriter, PublishesInBackgroundAndDrainsInOrder)
{
  const std::string root = scratch_dir("async");
  resilience::AsyncCheckpointer ckpt(root, {});
  for (int g = 0; g < 3; ++g)
  {
    resilience::CheckpointWriter writer("state.ckpt");
    writer.write_double(double(g));
    std::vector<resilience::AsyncCheckpointer::NamedImage> images;
    images.push_back({"state.ckpt", writer.encode()});
    ckpt.submit(std::move(images));
  }
  ckpt.drain();
  const auto status = ckpt.status();
  EXPECT_EQ(status.submitted, 3ull);
  EXPECT_EQ(status.published, 3ull);
  EXPECT_EQ(status.failed, 0ull);
  const auto newest = ckpt.store().newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 2ull) << "FIFO service order keeps HEAD monotonic";
  EXPECT_EQ(read_generation_value(ckpt.store(), *newest), 2.);
}

// Satellite: a failed checkpoint *write* must never kill a healthy solve —
// the failure is recorded, and the previous committed generation remains the
// restart point.
TEST(AsyncWriter, WriteFailureIsRecordedNotThrownAndOlderGenerationSurvives)
{
  const std::string root = scratch_dir("async_fail");
  resilience::AsyncCheckpointer ckpt(root, {});
  const auto submit_one = [&](const double value) {
    resilience::CheckpointWriter writer("state.ckpt");
    writer.write_double(value);
    std::vector<resilience::AsyncCheckpointer::NamedImage> images;
    images.push_back({"state.ckpt", writer.encode()});
    ckpt.submit(std::move(images));
  };

  submit_one(1.);
  ckpt.drain();
  {
    ScriptedFaults faults;
    faults.write_fault.enospc = true;
    ScopedScriptedFaults scope(faults);
    EXPECT_NO_THROW(submit_one(2.));
    ckpt.drain(); // the failure happened on the background thread
  }
  const auto status = ckpt.status();
  EXPECT_EQ(status.failed, 1ull);
  EXPECT_NE(status.last_error.find("ENOSPC"), std::string::npos)
    << status.last_error;
  const auto newest = ckpt.store().newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(read_generation_value(ckpt.store(), *newest), 1.)
    << "the previous valid generation remains the restart point";
  EXPECT_FALSE(CkptIo::instance().list_directory(root).empty());

  submit_one(3.); // the writer keeps working after a failure
  ckpt.drain();
  EXPECT_EQ(ckpt.status().published, 2ull);
}

TEST(AsyncWriter, BackPressureBoundsInFlightGenerations)
{
  const std::string root = scratch_dir("async_bp");
  ScriptedFaults faults;
  faults.write_fault.stall_seconds = 0.05; // slow disk
  ScopedScriptedFaults scope(faults);

  resilience::AsyncCheckpointer::Options opts;
  opts.max_in_flight = 1;
  resilience::AsyncCheckpointer ckpt(root, opts);
  Timer t;
  for (int g = 0; g < 3; ++g)
  {
    resilience::CheckpointWriter writer("state.ckpt");
    writer.write_double(double(g));
    std::vector<resilience::AsyncCheckpointer::NamedImage> images;
    images.push_back({"state.ckpt", writer.encode()});
    ckpt.submit(std::move(images));
  }
  // with max_in_flight = 1, the third submit must have waited for the
  // first write (>= 2 stalled writes of 50 ms each: state.ckpt + HEAD)
  EXPECT_GE(t.seconds(), 0.05);
  ckpt.drain();
  EXPECT_EQ(ckpt.status().published, 3ull);
  const auto newest = ckpt.store().newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 2ull);
}

TEST(AsyncService, ThreadPoolTasksRunFifoAndDrainOnDestruction)
{
  std::vector<int> order;
  std::mutex mutex;
  {
    concurrency::ThreadPool pool(1);
    for (int k = 0; k < 16; ++k)
      pool.async([&order, &mutex, k] {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(k);
      });
    // destructor must drain the queue, not abandon it
  }
  ASSERT_EQ(order.size(), 16u);
  for (int k = 0; k < 16; ++k)
    EXPECT_EQ(order[k], k) << "strict FIFO on the service thread";
}

// ---------------------------------------------------------------------------
// the Young/Daly scheduler
// ---------------------------------------------------------------------------

TEST(DalyScheduler, IntervalMatchesTheClosedForm)
{
  resilience::CheckpointScheduler::Options opts;
  opts.prior_mtbf_seconds = 10000.;
  opts.max_interval_seconds = 1e9;
  resilience::CheckpointScheduler sched(opts);
  EXPECT_EQ(sched.interval(), opts.default_interval_seconds)
    << "no measured cost yet: the default interval";

  sched.record_checkpoint_cost(1.);
  const double delta = 1., m = 10000.;
  const double r = std::sqrt(delta / (2. * m));
  const double expected =
    std::sqrt(2. * delta * m) * (1. + r / 3. + r * r / 9.) - delta;
  EXPECT_NEAR(sched.interval(), expected, 1e-12 * expected);

  // cost >= 2 MTBF: checkpoint once per expected failure
  resilience::CheckpointScheduler degenerate(opts);
  degenerate.record_checkpoint_cost(30000.);
  EXPECT_EQ(degenerate.interval(), 10000.);
}

TEST(DalyScheduler, ObservedFailureRateShortensTheInterval)
{
  resilience::CheckpointScheduler::Options opts;
  opts.prior_mtbf_seconds = 1e6;
  resilience::CheckpointScheduler sched(opts);
  sched.record_checkpoint_cost(0.5);
  const double healthy = sched.interval();

  // two failures in the first 100 seconds: MTBF drops to 50 s
  sched.record_failure(40.);
  sched.record_failure(100.);
  EXPECT_EQ(sched.failures(), 2ull);
  EXPECT_EQ(sched.mtbf(), 50.);
  EXPECT_LT(sched.interval(), healthy)
    << "a failing machine must checkpoint more often";

  // should_checkpoint honors the interval relative to the last checkpoint
  sched.checkpoint_taken(100.);
  EXPECT_FALSE(sched.should_checkpoint(100. + 0.5 * sched.interval()));
  EXPECT_TRUE(sched.should_checkpoint(100. + 1.5 * sched.interval()));
}

TEST(DalyScheduler, RecoveryLadderRungsFeedTheFailureRate)
{
  resilience::CheckpointScheduler sched;
  resilience::DistributedRecoveryOptions opts;
  opts.checkpoint_scheduler = &sched;
  const auto report = resilience::run_resilient(
    2, opts,
    [&](vmpi::Communicator &, resilience::RecoveryContext &,
        const resilience::RecoveryAttempt &attempt) {
      if (attempt.attempt < 2)
        throw resilience::SolveAbandoned("injected transient failure", {});
    });
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(sched.failures(), 2ull)
    << "every rung taken is one observed failure";
  EXPECT_LT(sched.mtbf(), resilience::CheckpointScheduler::Options()
                            .prior_mtbf_seconds)
    << "the observed rate replaces the prior";
}

// ---------------------------------------------------------------------------
// shard reassembly under every corruption class (satellite)
// ---------------------------------------------------------------------------

namespace
{
Vector<double> test_field(const std::size_t n)
{
  Vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.37 * double(i)) * 1e3 + double(i % 17);
  return v;
}

std::vector<std::vector<char>>
write_sharded(const std::string &dir, const Vector<double> &global,
              const int n_ranks)
{
  std::vector<std::uint64_t> checksums(n_ranks);
  std::vector<std::vector<char>> images(n_ranks);
  for (int r = 0; r < n_ranks; ++r)
  {
    const std::size_t begin = (global.size() * r) / n_ranks;
    const std::size_t end = (global.size() * (r + 1)) / n_ranks;
    Vector<double> owned(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      owned[i - begin] = global[i];
    resilience::ShardCheckpointWriter writer(dir, r, n_ranks);
    writer.write_u64(42);
    writer.write_owned_slice(global.size(), begin, owned);
    auto shard = writer.close();
    checksums[r] = shard.checksum;
    images[r] = std::move(shard.image);
  }
  resilience::write_shard_manifest(dir, checksums);
  return images;
}
} // namespace

// Every corruption class — truncated, bit-flipped, missing shard — must
// either repair via the buddy replica or fail with a diagnostic naming the
// bad shard; never crash, never silently load garbage.
TEST(ShardFaultMatrix, EveryCorruptionClassRepairsViaBuddyOrNamesTheShard)
{
  const Vector<double> global = test_field(997);

  enum class Corruption
  {
    truncated,
    bit_flipped,
    missing
  };
  const int victim = 2;
  for (const Corruption kind :
       {Corruption::truncated, Corruption::bit_flipped, Corruption::missing})
  {
    const std::string dir =
      scratch_dir("shard_matrix_" + std::to_string(int(kind)));
    const auto images = write_sharded(dir, global, 4);
    const std::string victim_path =
      dir + "/" + resilience::shard_file_name(victim);
    switch (kind)
    {
      case Corruption::truncated:
      {
        std::vector<char> bytes = slurp(victim_path);
        bytes.resize(bytes.size() / 2);
        spit(victim_path, bytes);
        break;
      }
      case Corruption::bit_flipped:
      {
        std::vector<char> bytes = slurp(victim_path);
        bytes[bytes.size() - 5] ^= 0x08;
        spit(victim_path, bytes);
        break;
      }
      case Corruption::missing:
        std::remove(victim_path.c_str());
        break;
    }

    // without the buddy: a structured error naming the bad shard
    try
    {
      resilience::ShardCheckpointReader reader(dir);
      FAIL() << "corruption class " << int(kind) << " was silently accepted";
    }
    catch (const resilience::CheckpointError &e)
    {
      EXPECT_NE(std::string(e.what()).find("rank2.ckpt"), std::string::npos)
        << "class " << int(kind) << " diagnostic: " << e.what();
    }

    // with the buddy-replicated image: full N->M restore, bit-identical
    resilience::ShardCheckpointReader reader(dir, {{victim, images[victim]}});
    EXPECT_EQ(reader.read_u64(), 42ull);
    Vector<double> restored;
    reader.read_global(restored);
    ASSERT_EQ(restored.size(), global.size());
    for (std::size_t i = 0; i < global.size(); ++i)
      ASSERT_EQ(restored[i], global[i])
        << "class " << int(kind) << ", dof " << i;
  }
}

// ---------------------------------------------------------------------------
// solver integration
// ---------------------------------------------------------------------------

TEST(SolverCheckpointing, AsyncRestartResumesBitForBit)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  const std::string root = scratch_dir("solver_async");

  // reference: 6 uninterrupted steps, no checkpointing
  INSSolver<double> reference;
  setup_es(reference, mesh, geom, es);
  for (int i = 0; i < 6; ++i)
    reference.advance();

  // checkpointed run: every step snapshots through the async writer
  {
    INSSolver<double> solver;
    setup_es(solver, mesh, geom, es);
    resilience::AsyncCheckpointer ckpt(root, {});
    solver.set_checkpointing(&ckpt); // no scheduler: checkpoint every step
    for (int i = 0; i < 3; ++i)
      solver.advance();
    ckpt.drain();
    EXPECT_EQ(ckpt.status().published, 3ull);
  }

  // "crash" and restart: a fresh solver restores the newest generation
  INSSolver<double> restarted;
  setup_es(restarted, mesh, geom, es);
  resilience::AsyncCheckpointer ckpt(root, {});
  restarted.set_checkpointing(&ckpt);
  ASSERT_TRUE(restarted.restore_latest());
  for (int i = 0; i < 3; ++i)
    restarted.advance();
  ckpt.drain();

  EXPECT_EQ(restarted.time(), reference.time());
  ASSERT_EQ(restarted.velocity().size(), reference.velocity().size());
  for (std::size_t i = 0; i < reference.velocity().size(); ++i)
    ASSERT_EQ(restarted.velocity()[i], reference.velocity()[i]) << "dof " << i;
  for (std::size_t i = 0; i < reference.pressure().size(); ++i)
    ASSERT_EQ(restarted.pressure()[i], reference.pressure()[i]) << "dof " << i;
}

// Satellite: every checkpoint write failing (disk full for the whole run)
// must not cost a single time step.
TEST(SolverCheckpointing, WriteFailuresNeverKillAHealthySolve)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  const std::string root = scratch_dir("solver_enospc");

  resilience::FaultPlan::Config cfg;
  cfg.io_enospc_rate = 1.;
  cfg.io_path_filter = "gen"; // every generation write fails; GC and
                              // directory ops are unaffected
  resilience::FaultPlan plan(cfg);

  INSSolver<double> solver;
  setup_es(solver, mesh, geom, es);
  resilience::AsyncCheckpointer ckpt(root, {});
  solver.set_checkpointing(&ckpt);
  {
    ScopedIoFaults scope(plan);
    for (int i = 0; i < 2; ++i)
      EXPECT_NO_THROW(solver.advance());
    ckpt.drain();
  }
  EXPECT_EQ(ckpt.status().failed, 2ull);
  EXPECT_GT(plan.counts().io_enospc_failures, 0ull);
  solver.maybe_checkpoint(); // pick up the recorded failure
  EXPECT_FALSE(solver.last_checkpoint_error().empty());
  EXPECT_FALSE(ckpt.store().newest_valid_generation().has_value());
  ckpt.drain();
}

// A torn write on the newest generation: restore_latest falls back to the
// previous one and the resumed trajectory is exact from there.
TEST(SolverCheckpointing, RestoreFallsBackPastATornGeneration)
{
  EthierSteinman es;
  Mesh mesh(unit_cube());
  TrilinearGeometry geom(mesh.coarse());
  const std::string root = scratch_dir("solver_torn");

  resilience::FaultPlan::Config cfg;
  cfg.io_torn_write_rate = 1.;
  cfg.io_path_filter = "gen000002"; // tear exactly the third generation
  resilience::FaultPlan plan(cfg);

  INSSolver<double> solver;
  setup_es(solver, mesh, geom, es);
  resilience::AsyncCheckpointer ckpt(root, {});
  solver.set_checkpointing(&ckpt);
  {
    ScopedIoFaults scope(plan);
    for (int i = 0; i < 3; ++i)
      solver.advance(); // generations 0, 1, 2 (2 torn, but "published")
    ckpt.drain();
  }
  EXPECT_EQ(ckpt.status().published, 3ull)
    << "the lying disk reports success for the torn generation";
  EXPECT_GT(plan.counts().io_torn_writes, 0ull);

  INSSolver<double> restarted;
  setup_es(restarted, mesh, geom, es);
  resilience::AsyncCheckpointer reopened(root, {});
  restarted.set_checkpointing(&reopened);
  const auto newest = reopened.store().newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 1ull) << "the torn generation 2 fails verification";
  ASSERT_TRUE(restarted.restore_latest());

  // the restored state is exactly the end of step 2: one more step lands
  // bitwise on the reference's step-3 state
  INSSolver<double> reference;
  setup_es(reference, mesh, geom, es);
  for (int i = 0; i < 3; ++i)
    reference.advance();
  restarted.advance();
  EXPECT_EQ(restarted.time(), reference.time());
  for (std::size_t i = 0; i < reference.velocity().size(); ++i)
    ASSERT_EQ(restarted.velocity()[i], reference.velocity()[i]) << "dof " << i;
  reopened.drain();
}

TEST(LungCheckpointing, ScheduledCheckpointRestoresTheCoupledState)
{
  LungApplicationParameters prm;
  prm.generations = 1;
  const std::string root = scratch_dir("lung_sched");

  LungApplication reference(prm);
  for (int i = 0; i < 6; ++i)
    reference.advance();

  {
    LungApplication app(prm);
    resilience::CheckpointScheduler::Options schedule;
    // clamp the interval to exactly 0 so every step checkpoints: the Daly
    // formula would otherwise kick in after the first cost sample and make
    // the schedule wall-clock-dependent
    schedule.default_interval_seconds = 0.;
    schedule.min_interval_seconds = 0.;
    schedule.max_interval_seconds = 0.;
    app.enable_checkpointing(root, {}, schedule);
    for (int i = 0; i < 6; ++i)
      app.advance();
    app.checkpointer()->drain();
    EXPECT_EQ(app.checkpointer()->status().published, 6ull);
    EXPECT_GT(app.checkpoint_scheduler()->checkpoint_cost(), 0.);
  }

  LungApplication restarted(prm);
  restarted.enable_checkpointing(root);
  ASSERT_TRUE(restarted.restore_latest());
  EXPECT_EQ(restarted.solver().time(), reference.solver().time());
  const auto &u_ref = reference.solver().velocity();
  const auto &u_new = restarted.solver().velocity();
  ASSERT_EQ(u_new.size(), u_ref.size());
  for (std::size_t i = 0; i < u_ref.size(); ++i)
    ASSERT_EQ(u_new[i], u_ref[i]) << "dof " << i;
  for (unsigned int o = 0; o < reference.ventilation().n_outlets(); ++o)
    EXPECT_EQ(restarted.ventilation().outlet_pressure(o),
              reference.ventilation().outlet_pressure(o));
}

// ---------------------------------------------------------------------------
// end to end: torn generation + rank kill, restore from generation g-1,
// bitwise-equal completion (the PR's acceptance test)
// ---------------------------------------------------------------------------

namespace
{
/// The distributed model problem of the E2E test: a deterministic damped
/// fixed-point iteration coupling all ranks through one allreduce per step,
///   S   = sum_i u_i                (rank-ordered, bitwise deterministic)
///   u_i <- 0.9 u_i + 0.1 b_i + 1e-7 S sin(i)
/// Bit-for-bit reproducible at fixed width — the property the acceptance
/// criterion measures across the torn-write + kill + restore cycle.
struct E2EModel
{
  static constexpr std::size_t n = 512;
  static constexpr int width = 4;

  static std::size_t begin(const int rank)
  {
    return (n * std::size_t(rank)) / width;
  }
  static std::size_t end(const int rank)
  {
    return (n * std::size_t(rank + 1)) / width;
  }

  static void step(std::vector<double> &owned, const std::size_t begin,
                   vmpi::Communicator &comm)
  {
    double partial = 0;
    for (const double u : owned)
      partial += u;
    const double s = comm.allreduce(partial, vmpi::Communicator::Op::sum);
    const Vector<double> b = test_field(n);
    for (std::size_t i = 0; i < owned.size(); ++i)
      owned[i] = 0.9 * owned[i] + 0.1 * b[begin + i] +
                 1e-7 * s * std::sin(double(begin + i));
  }
};

/// One sharded checkpoint generation written cooperatively by all ranks of
/// the E2E run: rank 0 stages and commits, everyone writes its shard.
void e2e_write_generation(resilience::GenerationStore &store,
                          const std::uint64_t id, const std::uint64_t step,
                          const std::vector<double> &owned,
                          const std::size_t begin, vmpi::Communicator &comm)
{
  constexpr int tag_checksum = 951;
  if (comm.rank() == 0)
  {
    const std::uint64_t allocated = store.allocate_generation();
    EXPECT_EQ(allocated, id);
    store.create_staging(id);
  }
  comm.barrier(); // staging directory exists
  const std::string staging = store.generation_directory(id) + ".tmp";
  resilience::ShardCheckpointWriter writer(staging, comm.rank(),
                                           E2EModel::width);
  writer.write_u64(step);
  Vector<double> slice(owned.size());
  for (std::size_t i = 0; i < owned.size(); ++i)
    slice[i] = owned[i];
  writer.write_owned_slice(E2EModel::n, begin, slice);
  const auto shard = writer.close(); // a torn write still "succeeds"
  if (comm.rank() == 0)
  {
    std::vector<std::uint64_t> checksums(E2EModel::width);
    checksums[0] = shard.checksum;
    for (int r = 1; r < E2EModel::width; ++r)
      checksums[r] = comm.recv_vector<std::uint64_t>(r, tag_checksum, 1).at(0);
    resilience::write_shard_manifest(staging, checksums);
    store.commit_generation(id);
  }
  else
    comm.send_vector(0, tag_checksum,
                     std::vector<std::uint64_t>{shard.checksum});
  comm.barrier(); // generation committed
}

/// Runs @p n_steps of the model from the restored state (or from zero),
/// checkpointing after every 5th step when @p store is non-null; returns
/// the final global vector (gathered) or empty on failure.
std::vector<double> e2e_run(resilience::GenerationStore *store,
                            const std::uint64_t first_generation,
                            const std::uint64_t start_step, const int n_steps,
                            const std::vector<double> &start_global,
                            std::atomic<int> *aborted = nullptr)
{
  std::vector<double> final_global(E2EModel::n, 0.);
  std::mutex mutex;
  vmpi::run(E2EModel::width, [&](vmpi::Communicator &comm) {
    comm.set_timeout(0.5);
    const std::size_t begin = E2EModel::begin(comm.rank());
    const std::size_t end = E2EModel::end(comm.rank());
    std::vector<double> owned(start_global.begin() + begin,
                              start_global.begin() + end);
    std::uint64_t next_generation = first_generation;
    try
    {
      for (std::uint64_t s = start_step + 1; s <= start_step + n_steps; ++s)
      {
        E2EModel::step(owned, begin, comm);
        if (store != nullptr && s % 5 == 0)
          e2e_write_generation(*store, next_generation++, s, owned, begin,
                               comm);
      }
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < owned.size(); ++i)
        final_global[begin + i] = owned[i];
    }
    catch (const vmpi::TimeoutError &)
    {
      if (aborted != nullptr)
        ++*aborted; // a peer died: this run is abandoned
    }
    catch (const vmpi::RankFailure &)
    {
      if (aborted != nullptr)
        ++*aborted; // the injected death itself
    }
  });
  return final_global;
}
} // namespace

TEST(EndToEnd, TornGenerationPlusRankKillRestoresFromGMinus1BitwiseEqual)
{
  const std::string root = scratch_dir("e2e");
  const std::vector<double> zeros(E2EModel::n, 0.);

  // fault-free 4-rank reference: 30 steps, no checkpointing
  const std::vector<double> reference =
    e2e_run(nullptr, 0, 0, 30, zeros);

  // faulty run: every write into generation 2 is torn (the lying disk), and
  // rank 2 is killed entering its 24th collective — mid-step 18, after
  // generation 2 "published". Checkpoints at steps 5/10/15 -> gens 0/1/2;
  // per step one allreduce, per checkpoint two barriers: rank 2's
  // collective count after step 17 is 17 + 2*3 = 23, so seq 23 is the
  // step-18 allreduce.
  resilience::FaultPlan::Config cfg;
  cfg.seed = 3;
  cfg.io_torn_write_rate = 1.;
  cfg.io_path_filter = "gen000002";
  cfg.kill_rank = 2;
  cfg.kill_step = 23;
  resilience::FaultPlan plan(cfg);

  std::atomic<int> aborted{0};
  {
    resilience::GenerationStore store(root, {});
    ScopedIoFaults io_scope(plan);
    std::mutex mutex;
    vmpi::run(E2EModel::width, [&](vmpi::Communicator &comm) {
      comm.install_fault_handler(&plan);
      comm.set_timeout(0.5);
      const std::size_t begin = E2EModel::begin(comm.rank());
      std::vector<double> owned(E2EModel::end(comm.rank()) - begin, 0.);
      std::uint64_t next_generation = 0;
      try
      {
        for (std::uint64_t s = 1; s <= 30; ++s)
        {
          E2EModel::step(owned, begin, comm);
          if (s % 5 == 0)
            e2e_write_generation(store, next_generation++, s, owned, begin,
                                 comm);
        }
        ADD_FAILURE() << "rank " << comm.rank()
                      << " finished despite the injected death";
      }
      catch (const vmpi::TimeoutError &)
      {
        ++aborted;
      }
      catch (const vmpi::RankFailure &)
      {
        ++aborted;
      }
      (void)mutex;
    });
  }
  EXPECT_EQ(aborted.load(), E2EModel::width)
    << "every rank unwinds: the victim by death, survivors by timeout";
  EXPECT_EQ(plan.counts().kills, 1ull);
  EXPECT_GT(plan.counts().io_torn_writes, 0ull)
    << "generation 2 must actually have been torn";

  // the node comes back: restart at the SAME width. Recovery must skip the
  // torn generation 2 and restore generation 1 (step 10).
  resilience::GenerationStore store(root, {});
  const auto newest = store.newest_valid_generation();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 1ull)
    << "generation 2 is on disk but torn: recovery falls back to g-1";

  std::uint64_t restored_step = 0;
  std::vector<double> restored(E2EModel::n, 0.);
  {
    resilience::ShardCheckpointReader reader(
      store.generation_directory(*newest));
    restored_step = reader.read_u64();
    Vector<double> global;
    reader.read_global(global);
    for (std::size_t i = 0; i < E2EModel::n; ++i)
      restored[i] = global[i];
  }
  EXPECT_EQ(restored_step, 10ull);

  const std::vector<double> completed =
    e2e_run(&store, *newest + 2, restored_step,
            int(30 - restored_step), restored);

  for (std::size_t i = 0; i < E2EModel::n; ++i)
    ASSERT_EQ(std::memcmp(&completed[i], &reference[i], sizeof(double)), 0)
      << "dof " << i << ": the restored run must complete bitwise-equal";
}
