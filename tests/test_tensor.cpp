#include <gtest/gtest.h>

#include "common/tensor.h"
#include "simd/vectorized_array.h"

using namespace dgflow;

TEST(Tensor1, BasicAlgebra)
{
  const Tensor1<double> a(1, 2, 3), b(-1, 0.5, 2);
  const auto s = a + b;
  EXPECT_EQ(s[0], 0.);
  EXPECT_EQ(s[1], 2.5);
  EXPECT_EQ(s[2], 5.);
  const auto d = a - b;
  EXPECT_EQ(d[0], 2.);
  const auto m = 2. * a;
  EXPECT_EQ(m[2], 6.);
  EXPECT_EQ(dot(a, b), -1. + 1. + 6.);
}

TEST(Tensor1, CrossProduct)
{
  const Tensor1<double> ex(1, 0, 0), ey(0, 1, 0);
  const auto ez = cross(ex, ey);
  EXPECT_EQ(ez[0], 0.);
  EXPECT_EQ(ez[1], 0.);
  EXPECT_EQ(ez[2], 1.);
  // anti-symmetry
  const Tensor1<double> a(1, 2, 3), b(4, -1, 0.5);
  const auto c1 = cross(a, b), c2 = cross(b, a);
  for (unsigned int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(c1[i], -c2[i]);
  // orthogonality
  EXPECT_NEAR(dot(c1, a), 0., 1e-14);
  EXPECT_NEAR(dot(c1, b), 0., 1e-14);
}

TEST(Tensor2, InvertTimesOriginalIsIdentity)
{
  Tensor2<double> A;
  A[0][0] = 2;
  A[0][1] = 0.5;
  A[0][2] = -1;
  A[1][0] = 0;
  A[1][1] = 3;
  A[1][2] = 0.25;
  A[2][0] = 1;
  A[2][1] = -0.5;
  A[2][2] = 1.5;
  const Tensor2<double> B = invert(A);
  for (unsigned int i = 0; i < 3; ++i)
  {
    Tensor1<double> e;
    e[i] = 1.;
    const auto x = apply(B, apply(A, e));
    for (unsigned int j = 0; j < 3; ++j)
      EXPECT_NEAR(x[j], e[j], 1e-13);
  }
  EXPECT_NEAR(determinant(A) * determinant(B), 1., 1e-13);
}

TEST(Tensor2, TransposeAndApplyTranspose)
{
  Tensor2<double> A;
  for (unsigned int i = 0; i < 3; ++i)
    for (unsigned int j = 0; j < 3; ++j)
      A[i][j] = i * 3. + j + 1.;
  const Tensor1<double> x(1, -2, 0.5);
  const auto y1 = apply_transpose(A, x);
  const auto y2 = apply(transpose(A), x);
  for (unsigned int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Tensor2, WorksWithVectorizedArray)
{
  using VA = VectorizedArray<double>;
  Tensor2<VA> A;
  Tensor1<VA> x;
  for (unsigned int i = 0; i < 3; ++i)
  {
    x[i] = VA(double(i + 1));
    for (unsigned int j = 0; j < 3; ++j)
      A[i][j] = VA(i == j ? 2. : 0.5);
  }
  const auto y = apply(A, x);
  // row 0: 2*1 + 0.5*2 + 0.5*3 = 4.5
  for (unsigned int l = 0; l < VA::width; ++l)
    EXPECT_DOUBLE_EQ(y[0][l], 4.5);
  const VA det = determinant(A);
  const Tensor2<VA> Ainv = invert(A);
  const auto id = apply(Ainv, y);
  for (unsigned int l = 0; l < VA::width; ++l)
  {
    EXPECT_NEAR(id[0][l], 1., 1e-13);
    EXPECT_NEAR(id[1][l], 2., 1e-13);
    EXPECT_NEAR(id[2][l], 3., 1e-13);
    EXPECT_GT(det[l], 0.);
  }
}

TEST(PointUtilities, NormAndNormalize)
{
  const Point p(3, 4, 0);
  EXPECT_DOUBLE_EQ(norm(p), 5.);
  const Point u = normalize(p);
  EXPECT_DOUBLE_EQ(norm(u), 1.);
  EXPECT_DOUBLE_EQ(u[0], 0.6);
}
