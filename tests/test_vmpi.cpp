#include <gtest/gtest.h>

#include <numeric>

#include "mesh/generators.h"
#include "mesh/partition.h"
#include "vmpi/communicator.h"

using namespace dgflow;

TEST(VmpiTest, RingPass)
{
  vmpi::run(4, [](vmpi::Communicator &comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<int> token{comm.rank() * 10};
    comm.send_vector(next, 7, token);
    const auto received = comm.recv_vector<int>(prev, 7, 4);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0], prev * 10);
  });
}

TEST(VmpiTest, TaggedMessagesDoNotMix)
{
  vmpi::run(2, [](vmpi::Communicator &comm) {
    if (comm.rank() == 0)
    {
      std::vector<double> a{1.5}, b{2.5};
      comm.send_vector(1, 100, a);
      comm.send_vector(1, 200, b);
    }
    else
    {
      // receive in reverse tag order
      const auto b = comm.recv_vector<double>(0, 200, 1);
      const auto a = comm.recv_vector<double>(0, 100, 1);
      EXPECT_EQ(b[0], 2.5);
      EXPECT_EQ(a[0], 1.5);
    }
  });
}

TEST(VmpiTest, AllreduceSumMaxMin)
{
  for (const int n_ranks : {1, 3, 8})
    vmpi::run(n_ranks, [n_ranks](vmpi::Communicator &comm) {
      const double r = comm.rank() + 1.;
      EXPECT_DOUBLE_EQ(comm.allreduce(r, vmpi::Communicator::Op::sum),
                       n_ranks * (n_ranks + 1.) / 2.);
      EXPECT_DOUBLE_EQ(comm.allreduce(r, vmpi::Communicator::Op::max),
                       double(n_ranks));
      EXPECT_DOUBLE_EQ(comm.allreduce(r, vmpi::Communicator::Op::min), 1.);
    });
}

TEST(VmpiTest, RepeatedCollectivesDoNotRace)
{
  vmpi::run(6, [](vmpi::Communicator &comm) {
    for (int it = 0; it < 200; ++it)
    {
      const double s =
        comm.allreduce(double(it + comm.rank()), vmpi::Communicator::Op::sum);
      EXPECT_DOUBLE_EQ(s, 6. * it + 15.);
    }
  });
}

TEST(VmpiTest, ExceptionsPropagate)
{
  EXPECT_THROW(vmpi::run(3,
                         [](vmpi::Communicator &comm) {
                           comm.barrier();
                           if (comm.rank() == 1)
                             throw std::runtime_error("rank failure");
                         }),
               std::runtime_error);
}

TEST(VmpiTest, GhostExchangeOnPartitionedMesh)
{
  // partition a refined cube, let each rank own its cells' values (= rank
  // id) and exchange across cut faces; every rank must see its neighbors'
  // correct ranks on ghost faces
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  const int n_ranks = 4;
  const auto rank_of_cell = partition_cells(mesh, n_ranks);
  const auto faces = mesh.build_face_list();

  vmpi::run(n_ranks, [&](vmpi::Communicator &comm) {
    const int me = comm.rank();
    // collect cut faces by neighbor rank
    std::map<int, std::vector<index_t>> send_cells, expect_cells;
    for (const auto &f : faces)
    {
      if (f.is_boundary())
        continue;
      const int rm = rank_of_cell[f.cell_m], rp = rank_of_cell[f.cell_p];
      if (rm == me && rp != me)
      {
        send_cells[rp].push_back(f.cell_m);
        expect_cells[rp].push_back(f.cell_p);
      }
      else if (rp == me && rm != me)
      {
        send_cells[rm].push_back(f.cell_p);
        expect_cells[rm].push_back(f.cell_m);
      }
    }
    // send owned values (here: 1000*rank + cell index)
    for (const auto &[other, cells] : send_cells)
    {
      std::vector<double> payload;
      for (const index_t c : cells)
        payload.push_back(1000. * me + c);
      comm.send_vector(other, 42, payload);
    }
    for (const auto &[other, cells] : expect_cells)
    {
      const auto payload = comm.recv_vector<double>(other, 42, cells.size());
      ASSERT_EQ(payload.size(), cells.size());
      for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_DOUBLE_EQ(payload[i], 1000. * other + cells[i]);
    }
  });
}
