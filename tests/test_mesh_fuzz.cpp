// Randomized property tests of the adaptive-mesh machinery: repeated random
// refinement must preserve 2:1 balance, face-list consistency, hanging-face
// subface completeness, and the exactness of constrained Q1 interpolation.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "dof/dof_handler.h"
#include "matrixfree/fe_face_evaluation.h"
#include "matrixfree/field_tools.h"
#include "mesh/generators.h"
#include "operators/cfe_space.h"

using namespace dgflow;

namespace
{
Mesh random_adaptive_mesh(const unsigned int seed, const unsigned int rounds)
{
  std::mt19937 rng(seed);
  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{2, 1, 1}}));
  mesh.refine_uniform(1);
  for (unsigned int round = 0; round < rounds; ++round)
  {
    std::vector<bool> flags(mesh.n_active_cells(), false);
    std::uniform_int_distribution<index_t> pick(0, mesh.n_active_cells() - 1);
    for (unsigned int i = 0; i < 1 + mesh.n_active_cells() / 10; ++i)
      flags[pick(rng)] = true;
    mesh.refine(flags);
  }
  return mesh;
}
} // namespace

class MeshFuzz : public ::testing::TestWithParam<unsigned int>
{};

TEST_P(MeshFuzz, BalanceAndFaceListInvariants)
{
  const Mesh mesh = random_adaptive_mesh(GetParam(), 3);

  // every neighbor query must succeed (asserts internally on 2:1
  // violations) and levels may differ by at most one
  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const auto nb = mesh.neighbor(i, f);
      if (nb.kind == Mesh::NeighborInfo::Kind::coarser)
        ASSERT_EQ(mesh.cell(nb.cell).level + 1, mesh.cell(i).level);
      if (nb.kind == Mesh::NeighborInfo::Kind::finer)
        for (const index_t c : nb.children)
          ASSERT_EQ(mesh.cell(c).level, mesh.cell(i).level + 1);
    }

  // face list: each interior conforming face appears exactly once; each
  // hanging coarse face is covered by exactly 4 subface entries
  std::map<std::pair<index_t, unsigned int>, unsigned int> seen;
  std::map<std::pair<index_t, unsigned int>, std::set<unsigned int>> subfaces;
  for (const auto &face : mesh.build_face_list())
  {
    if (face.is_boundary())
      continue;
    if (face.is_hanging())
      subfaces[{face.cell_p, face.face_no_p}].insert(face.subface0 +
                                                     2 * face.subface1);
    else
      ++seen[{std::min(face.cell_m, face.cell_p),
              face.cell_m < face.cell_p ? face.face_no_m : face.face_no_p}];
  }
  for (const auto &[key, count] : seen)
    ASSERT_EQ(count, 1u);
  for (const auto &[key, subs] : subfaces)
    ASSERT_EQ(subs.size(), 4u);
}

TEST_P(MeshFuzz, TracesMatchOnRandomAdaptiveMesh)
{
  const Mesh mesh = random_adaptive_mesh(GetParam() + 100, 2);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  mf.reinit(mesh, geom, data);

  Vector<double> v;
  interpolate(mf, 0, 0,
              [](const Point &p) { return 3 * p[0] - p[1] + 2 * p[2]; }, v);
  FEFaceEvaluation<double, 1> fm(mf, 0, 0, true), fp(mf, 0, 0, false);
  for (unsigned int b = 0; b < mf.n_inner_face_batches(); ++b)
  {
    fm.reinit(b);
    fp.reinit(b);
    fm.read_dof_values(v);
    fp.read_dof_values(v);
    fm.evaluate(true, false);
    fp.evaluate(true, false);
    for (unsigned int q = 0; q < fm.n_q_points; ++q)
      for (unsigned int l = 0; l < fm.n_filled_lanes(); ++l)
        ASSERT_NEAR(fm.get_value(q)[l], fp.get_value(q)[l], 1e-11);
  }
}

TEST_P(MeshFuzz, ConstrainedQ1InterpolationIsLinearExact)
{
  // resolve the hanging-node constraints of a linear function: the
  // constrained interpolation must reproduce it exactly everywhere
  const Mesh mesh = random_adaptive_mesh(GetParam() + 200, 3);
  CFEDofHandler dofs;
  dofs.reinit(mesh);
  const CFESpace space =
    make_q1_space(dofs, [](unsigned int) { return false; });

  // assign nodal values of f at the unconstrained dofs via cell corners
  const auto f = [](const Point &p) {
    return 0.3 + 1.7 * p[0] - 0.6 * p[1] + 0.9 * p[2];
  };
  TrilinearGeometry geom(mesh.coarse());
  Vector<double> values(space.n_dofs);
  std::vector<char> assigned(space.n_dofs, 0);
  for (index_t c = 0; c < mesh.n_active_cells(); ++c)
    for (unsigned int v = 0; v < 8; ++v)
    {
      const std::uint32_t e = space.cell_entries[8 * std::size_t(c) + v];
      if (CFESpace::is_constrained(e))
        continue;
      const auto lo = mesh.cell_lower_corner(c);
      const double h = mesh.cell_reference_size(c);
      const Point ref(lo[0] + h * (v & 1), lo[1] + h * ((v >> 1) & 1),
                      lo[2] + h * ((v >> 2) & 1));
      values[e] = f(geom.map(mesh.cell(c).tree, ref));
      assigned[e] = 1;
    }
  for (std::size_t i = 0; i < space.n_dofs; ++i)
    ASSERT_TRUE(assigned[i]) << "dof " << i << " never touched";

  // every constrained entry must resolve to the exact nodal value
  for (index_t c = 0; c < mesh.n_active_cells(); ++c)
    for (unsigned int v = 0; v < 8; ++v)
    {
      const std::uint32_t e = space.cell_entries[8 * std::size_t(c) + v];
      if (!CFESpace::is_constrained(e))
        continue;
      double interpolated = 0;
      for (const auto &ce : space.constraints[e & ~CFESpace::constraint_bit])
        interpolated += ce.weight * values[ce.dof];
      const auto lo = mesh.cell_lower_corner(c);
      const double h = mesh.cell_reference_size(c);
      const Point ref(lo[0] + h * (v & 1), lo[1] + h * ((v >> 1) & 1),
                      lo[2] + h * ((v >> 2) & 1));
      const double exact = f(geom.map(mesh.cell(c).tree, ref));
      ASSERT_NEAR(interpolated, exact, 1e-11)
        << "cell " << c << " corner " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshFuzz, ::testing::Range(0u, 6u));
