#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "incns/vtk_writer.h"
#include "matrixfree/field_tools.h"
#include "mesh/generators.h"

using namespace dgflow;

TEST(VTKWriterTest, WritesConsistentLegacyFile)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2, 1};
  data.n_q_points_1d = {3, 2};
  mf.reinit(mesh, geom, data);

  Vector<double> u, p;
  interpolate_vector(mf, 0, 0,
                     [](const Point &pt) {
                       return Tensor1<double>(pt[0], -pt[1], 0.5);
                     },
                     u);
  interpolate(mf, 1, 1, [](const Point &pt) { return pt[2]; }, p);

  VTKWriter<double> writer(mf, 0, 0);
  writer.add_vector("velocity", u);
  writer.add_scalar("pressure", p, 1, 0);
  const std::string path = "/tmp/dgflow_vtk_test.vtk";
  writer.write(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();

  const unsigned int n_cells = mesh.n_active_cells();
  const unsigned int points = n_cells * 27;     // (k+1)^3 per cell
  const unsigned int subcells = n_cells * 8;    // k^3 per cell
  EXPECT_NE(content.find("POINTS " + std::to_string(points)),
            std::string::npos);
  EXPECT_NE(content.find("CELLS " + std::to_string(subcells)),
            std::string::npos);
  EXPECT_NE(content.find("VECTORS velocity"), std::string::npos);
  EXPECT_NE(content.find("SCALARS pressure"), std::string::npos);
  std::remove(path.c_str());
}
