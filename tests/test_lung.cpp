#include <gtest/gtest.h>

#include <cmath>

#include "lung/lung_mesh.h"
#include "lung/ventilation.h"
#include "matrixfree/field_tools.h"

using namespace dgflow;

TEST(AirwayTreeTest, CountsAndGenerations)
{
  AirwayTreeParameters prm;
  prm.n_generations = 5;
  const AirwayTree tree = AirwayTree::generate(prm);
  // full binary tree of generations 0..5: 2^6 - 1 airways, 2^5 terminal
  EXPECT_EQ(tree.airways().size(), 63u);
  EXPECT_EQ(tree.n_terminal(), 32u);
  for (const auto &a : tree.airways())
    EXPECT_LE(a.generation, 5u);
}

TEST(AirwayTreeTest, MorphometricScaling)
{
  AirwayTreeParameters prm;
  prm.n_generations = 6;
  prm.jitter = 0.;
  const AirwayTree tree = AirwayTree::generate(prm);
  for (const auto &a : tree.airways())
  {
    EXPECT_NEAR(a.diameter,
                prm.trachea_diameter *
                  std::pow(prm.diameter_ratio, double(a.generation)),
                1e-12);
    if (a.generation > 0)
      EXPECT_NEAR(a.length(), prm.length_to_diameter * a.diameter,
                  1e-12 + prm.jitter * a.length());
    // frames orthonormal and perpendicular to the axis
    EXPECT_NEAR(norm(a.e1), 1., 1e-12);
    EXPECT_NEAR(dot(a.e1, a.e2), 0., 1e-12);
    EXPECT_NEAR(dot(a.e1, a.direction()), 0., 1e-10);
  }
}

TEST(AirwayTreeTest, ResistanceMatchesClosedForm)
{
  AirwayTreeParameters prm;
  prm.n_generations = 3;
  prm.jitter = 0.;
  const AirwayTree tree = AirwayTree::generate(prm);
  const double mu = 1.2 * 1.7e-5;
  // one-generation subtree: R(branch at gen 3)/1 summed with halving
  const double r3 = tree.subtree_resistance(mu, 3, 3);
  const double d3 = prm.trachea_diameter * std::pow(prm.diameter_ratio, 3.);
  EXPECT_NEAR(r3,
              AirwayTree::airway_resistance(
                mu, prm.length_to_diameter * d3, d3),
              1e-8 * r3);
  // two generations: add half of the next generation's branch resistance
  const double r34 = tree.subtree_resistance(mu, 3, 4);
  const double d4 = d3 * prm.diameter_ratio;
  EXPECT_NEAR(r34,
              r3 + 0.5 * AirwayTree::airway_resistance(
                           mu, prm.length_to_diameter * d4, d4),
              1e-8 * r34);
}

TEST(AirwayTreeTest, PhysiologicalTotalResistance)
{
  // the airway share of the total resistance should be of the order of the
  // physiological 0.12 kPa s/l (80% of 0.15); the idealized symmetric
  // morphometry lands in the right decade
  AirwayTreeParameters prm;
  prm.n_generations = 11;
  const AirwayTree tree = AirwayTree::generate(prm);
  const double mu = 1.2 * 1.7e-5;
  const double R = tree.total_resistance(mu, 25);
  EXPECT_GT(R, 0.01e3 / liter);
  EXPECT_LT(R, 1.0e3 / liter);
}

class LungMeshTest : public ::testing::TestWithParam<unsigned int>
{};

TEST_P(LungMeshTest, BuildsWatertightManifoldMesh)
{
  AirwayTreeParameters prm;
  prm.n_generations = GetParam();
  const AirwayTree tree = AirwayTree::generate(prm);
  // compute_connectivity inside asserts manifoldness and right-handedness
  const LungMesh lung = build_lung_mesh(tree);
  EXPECT_GT(lung.coarse.cells.size(), 9u * 3u * tree.airways().size());
  EXPECT_EQ(lung.outlet_ids.size(), tree.n_terminal());
  EXPECT_EQ(lung.cell_airway.size(), lung.coarse.cells.size());
}

TEST_P(LungMeshTest, BoundaryIdsCoverInletAndOutlets)
{
  AirwayTreeParameters prm;
  prm.n_generations = GetParam();
  const AirwayTree tree = AirwayTree::generate(prm);
  const LungMesh lung = build_lung_mesh(tree);

  std::map<unsigned int, unsigned int> face_count;
  for (index_t c = 0; c < lung.coarse.n_cells(); ++c)
    for (unsigned int f = 0; f < 6; ++f)
    {
      const unsigned int id = lung.coarse.boundary_ids[c][f];
      if (id != interior_face_id)
        ++face_count[id];
    }
  EXPECT_EQ(face_count[LungMesh::inlet_id], 9u);
  for (const unsigned int id : lung.outlet_ids)
    EXPECT_EQ(face_count[id], 9u) << "outlet id " << id;
  EXPECT_GT(face_count[LungMesh::wall_id], 0u);
}

INSTANTIATE_TEST_SUITE_P(Generations, LungMeshTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(LungMeshGeometry, MetricTermsAreValidThroughMatrixFree)
{
  // building MatrixFree runs the positive-Jacobian and two-sided face
  // consistency assertions over the whole lung mesh including junctions
  AirwayTreeParameters prm;
  prm.n_generations = 2;
  const AirwayTree tree = AirwayTree::generate(prm);
  const LungMesh lung = build_lung_mesh(tree);
  Mesh mesh(lung.coarse);
  TrilinearGeometry geom(mesh.coarse());
  MatrixFree<double> mf;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {2};
  data.n_q_points_1d = {3};
  data.geometry_degree = 1; // lung geometry is vertex-based (trilinear)
  mf.reinit(mesh, geom, data);

  // the mesh volume should be close to the sum of the tube volumes
  double tube_volume = 0;
  for (const auto &a : tree.airways())
    tube_volume += M_PI * 0.25 * a.diameter * a.diameter * a.length();
  const double mesh_volume = domain_volume(mf);
  EXPECT_GT(mesh_volume, 0.55 * tube_volume);
  EXPECT_LT(mesh_volume, 1.3 * tube_volume);
}

TEST(LungMeshGeometry, SupportsLocalRefinementOfUpperAirways)
{
  AirwayTreeParameters prm;
  prm.n_generations = 2;
  const AirwayTree tree = AirwayTree::generate(prm);
  const LungMesh lung = build_lung_mesh(tree);
  Mesh mesh(lung.coarse);
  const auto flags = lung.refine_flags_upto_generation(0);
  mesh.refine(flags);
  unsigned int n_hanging = 0;
  for (const auto &f : mesh.build_face_list())
    n_hanging += f.is_hanging() ? 1 : 0;
  EXPECT_GT(n_hanging, 0u);
  EXPECT_GT(mesh.n_active_cells(), lung.coarse.n_cells());
}

TEST(VentilationModelTest, OutletParametersFollowTheParallelRule)
{
  AirwayTreeParameters tp;
  tp.n_generations = 3;
  tp.jitter = 0.;
  const AirwayTree tree = AirwayTree::generate(tp);
  LungModelParameters lung;
  VentilatorSettings vent;
  const VentilationModel model(tree, lung, vent);

  ASSERT_EQ(model.n_outlets(), 8u);
  // uniform compliance distribution
  for (unsigned int o = 0; o < model.n_outlets(); ++o)
    EXPECT_NEAR(model.outlet_compliance(o), lung.total_compliance / 8.,
                1e-18);
  // symmetric tree: all outlet resistances equal and dominated by the
  // prescribed tissue share in parallel
  double inv = 0;
  for (unsigned int o = 0; o < model.n_outlets(); ++o)
    inv += 1. / model.outlet_resistance(o);
  const double parallel_R = 1. / inv;
  EXPECT_GT(parallel_R, lung.tissue_fraction * lung.total_resistance);
}

TEST(VentilationModelTest, VentilatorWaveformAndTubusDrop)
{
  AirwayTreeParameters tp;
  tp.n_generations = 1;
  const AirwayTree tree = AirwayTree::generate(tp);
  VentilatorSettings vent;
  vent.dp = 10 * cmH2O;
  const VentilationModel model(tree, LungModelParameters(), vent);

  EXPECT_NEAR(model.ventilator_pressure(0.1), 10 * cmH2O, 1e-12);
  EXPECT_NEAR(model.ventilator_pressure(1.5), 0., 1e-12); // exhale
  EXPECT_NEAR(model.ventilator_pressure(3.2), 10 * cmH2O, 1e-12);
  // no flow yet: no tubus drop
  EXPECT_NEAR(model.inlet_pressure(0.1), 10 * cmH2O, 1e-12);
}

TEST(VentilationModelTest, CompartmentIntegratesVolumeAndPressure)
{
  AirwayTreeParameters tp;
  tp.n_generations = 1;
  tp.jitter = 0.;
  const AirwayTree tree = AirwayTree::generate(tp);
  LungModelParameters lung;
  VentilationModel model(tree, lung, VentilatorSettings());

  // constant inflow into both outlets for 0.1 s
  const double q = 0.1 * liter;
  std::vector<double> fluxes(2, q);
  const double dt = 1e-3;
  for (int i = 0; i < 100; ++i)
    model.update(i * dt, dt, 2 * q, fluxes);
  const double V = q * 0.1;
  const double expected_p =
    model.outlet_resistance(0) * q + V / model.outlet_compliance(0);
  EXPECT_NEAR(model.outlet_pressure(0), expected_p, 1e-8 * expected_p);
  EXPECT_NEAR(model.inhaled_volume_current_cycle(), 2 * V, 1e-12);
}

TEST(VentilationModelTest, ControllerConvergesOnSurrogate)
{
  // 0D surrogate: treat the whole system as one RC; the controller should
  // bring the tidal volume to the target within a few cycles
  AirwayTreeParameters tp;
  tp.n_generations = 2;
  tp.jitter = 0.;
  const AirwayTree tree = AirwayTree::generate(tp);
  LungModelParameters lung;
  VentilatorSettings vent;
  vent.dp = 4 * cmH2O; // deliberately too low
  VentilationModel model(tree, lung, vent);

  const double dt = 2e-4;
  const unsigned int n_out = model.n_outlets();
  std::vector<double> fluxes(n_out, 0.);
  std::vector<double> volume(n_out, 0.);
  // quasi-static surrogate: the inlet pressure drives each outlet's RC
  // compartment directly, q = (p_in - V/C) / R solved per step
  double vt = 0;
  for (unsigned int cycle = 0; cycle < 10; ++cycle)
  {
    for (double t = cycle * 3.; t < (cycle + 1) * 3. - 1e-9; t += dt)
    {
      double total = 0;
      for (unsigned int o = 0; o < n_out; ++o)
      {
        const double q =
          (model.inlet_pressure(t) - volume[o] / model.outlet_compliance(o)) /
          model.outlet_resistance(o);
        fluxes[o] = q;
        volume[o] += dt * q;
        total += q;
      }
      model.update(t, dt, total, fluxes);
    }
    vt = model.tidal_volume_last_cycle();
  }
  EXPECT_NEAR(vt, 500e-6, 0.1 * 500e-6)
    << "tidal volume " << vt / liter << " l";
}
