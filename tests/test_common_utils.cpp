#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "common/table.h"
#include "common/timer.h"
#include "common/types.h"

using namespace dgflow;

TEST(PowInt, SmallExponents)
{
  EXPECT_EQ(pow_int(2, 0), 1u);
  EXPECT_EQ(pow_int(2, 10), 1024u);
  EXPECT_EQ(pow_int(5, 3), 125u);
  EXPECT_EQ(pow_int(1, 100), 1u);
}

TEST(TableTest, FormatsRowsAndHeaders)
{
  Table t({"name", "value"});
  t.add_row("alpha", 1.5);
  t.add_row("beta", 42);
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(TableTest, ScientificNotationMatchesPaperStyle)
{
  EXPECT_EQ(Table::sci(3.5e5), "3.5e5");
  EXPECT_EQ(Table::sci(1.8e5), "1.8e5");
  EXPECT_EQ(Table::sci(2.0e6), "2.0e6");
  EXPECT_EQ(Table::sci(4.4e-5), "4.4e-5");
}

TEST(TimerTest, MeasuresElapsedTime)
{
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.restart();
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(TimerTreeTest, AccumulatesSections)
{
  TimerTree tree;
  tree.add("a", 1.0);
  tree.add("a", 0.5);
  tree.add("b", 2.0);
  EXPECT_DOUBLE_EQ(tree.entries().at("a").seconds, 1.5);
  EXPECT_EQ(tree.entries().at("a").count, 2ul);
  EXPECT_DOUBLE_EQ(tree.total(), 3.5);
  tree.clear();
  EXPECT_TRUE(tree.entries().empty());
}

TEST(ScopedTimerTest, RecordsIntoTree)
{
  TimerTree tree;
  {
    ScopedTimer st(tree, "section");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(tree.entries().at("section").count, 1ul);
  EXPECT_GT(tree.entries().at("section").seconds, 0.003);
}

TEST(BestWallTime, TakesTheMinimum)
{
  int call = 0;
  const double best = best_wall_time(
    [&]() {
      // first call slower than the rest
      std::this_thread::sleep_for(
        std::chrono::milliseconds(call++ == 0 ? 12 : 2));
    },
    4);
  EXPECT_LT(best, 0.010);
  EXPECT_GE(best, 0.001);
}
