#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generators.h"
#include "multigrid/hybrid_multigrid.h"
#include "solvers/cg.h"

using namespace dgflow;

namespace
{
BoundaryMap all_dirichlet()
{
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  return bc;
}

struct PoissonSetup
{
  MatrixFree<double> mf;
  LaplaceOperator<double> laplace;
  HybridMultigrid<float> mg;

  void init(const Mesh &mesh, const Geometry &geom, const unsigned int degree,
            const HybridMultigrid<float>::Options &opts = {})
  {
    MatrixFree<double>::AdditionalData data;
    data.degrees = {degree};
    data.n_q_points_1d = {degree + 1};
    mf.reinit(mesh, geom, data);
    laplace.reinit(mf, 0, 0, all_dirichlet());
    mg.setup(mesh, geom, degree, all_dirichlet(), opts);
  }

  SolveStats solve(Vector<double> &x, const double tol = 1e-10)
  {
    const auto exact = [](const Point &p) {
      return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
             std::sin(M_PI * p[2]);
    };
    const auto f = [&](const Point &p) { return 3 * M_PI * M_PI * exact(p); };
    Vector<double> rhs;
    laplace.assemble_rhs(rhs, f, exact);
    x.reinit(laplace.n_dofs());
    SolverControl control;
    control.max_iterations = 100;
    control.rel_tol = tol;
    return solve_cg(laplace, x, rhs, mg, control);
  }
};
} // namespace

TEST(HybridMultigridTest, FewIterationsOnCube)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(3);
  TrilinearGeometry geom(mesh.coarse());
  PoissonSetup s;
  s.init(mesh, geom, 3);
  Vector<double> x;
  const auto result = s.solve(x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 30u) << "iterations: " << result.iterations;
}

TEST(HybridMultigridTest, IterationCountIsMeshIndependent)
{
  unsigned int iters[2];
  for (unsigned int i = 0; i < 2; ++i)
  {
    Mesh mesh(unit_cube());
    mesh.refine_uniform(2 + i);
    TrilinearGeometry geom(mesh.coarse());
    PoissonSetup s;
    s.init(mesh, geom, 2);
    Vector<double> x;
    const auto result = s.solve(x);
    EXPECT_TRUE(result.converged);
    iters[i] = result.iterations;
  }
  EXPECT_LE(iters[1], iters[0] + 3)
    << "iterations grew: " << iters[0] << " -> " << iters[1];
}

TEST(HybridMultigridTest, SolvesAccurately)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(3);
  TrilinearGeometry geom(mesh.coarse());
  PoissonSetup s;
  s.init(mesh, geom, 2);
  Vector<double> x;
  s.solve(x, 1e-11);
  const auto exact = [](const Point &p) {
    return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
           std::sin(M_PI * p[2]);
  };
  // discretization error at k=2, 8^3 cells is ~7e-5; the solver must not
  // add to it
  EXPECT_LT(l2_error(s.mf, 0, 0, x, exact), 2e-4);
}

TEST(HybridMultigridTest, WorksWithHangingNodes)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  std::vector<bool> flags(mesh.n_active_cells(), false);
  for (index_t i = 0; i < mesh.n_active_cells(); ++i)
  {
    const auto lo = mesh.cell_lower_corner(i);
    if (lo[0] < 0.5 && lo[1] < 0.5 && lo[2] < 0.5)
      flags[i] = true;
  }
  mesh.refine(flags);
  TrilinearGeometry geom(mesh.coarse());
  PoissonSetup s;
  s.init(mesh, geom, 3);
  Vector<double> x;
  const auto result = s.solve(x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 40u) << "iterations: " << result.iterations;
}

TEST(HybridMultigridTest, WorksOnDeformedGeometry)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(3);
  AnalyticGeometry geom([](index_t, const Point &p) {
    return Point(p[0] + 0.08 * std::sin(M_PI * p[0]) * p[1],
                 p[1] - 0.06 * p[0] * p[2], p[2] + 0.05 * p[1]);
  });
  PoissonSetup s;
  s.init(mesh, geom, 3);
  Vector<double> x;
  const auto result = s.solve(x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 32u) << "iterations: " << result.iterations;
}

TEST(HybridMultigridTest, AblationWithoutHCoarsening)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(3);
  TrilinearGeometry geom(mesh.coarse());
  HybridMultigrid<float>::Options opts;
  opts.h_coarsening = false; // AMG directly below the fine-mesh Q1 space
  PoissonSetup s;
  s.init(mesh, geom, 2, opts);
  Vector<double> x;
  const auto result = s.solve(x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 25u);
}

TEST(HybridMultigridTest, DegreeOneHasNoPTransfer)
{
  Mesh mesh(unit_cube());
  mesh.refine_uniform(2);
  TrilinearGeometry geom(mesh.coarse());
  PoissonSetup s;
  s.init(mesh, geom, 1);
  Vector<double> x;
  const auto result = s.solve(x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 20u);
}
