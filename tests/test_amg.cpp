#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "amg/amg.h"

using namespace dgflow;

namespace
{
/// 1D Poisson matrix of size n (Dirichlet), a simple SPD test case.
SparseMatrix poisson_1d(const std::size_t n)
{
  std::vector<SparseMatrix::Triplet> t;
  for (std::size_t i = 0; i < n; ++i)
  {
    t.push_back({i, i, 2.});
    if (i > 0)
      t.push_back({i, i - 1, -1.});
    if (i + 1 < n)
      t.push_back({i, i + 1, -1.});
  }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}

/// 3D 7-point Laplacian on an m^3 grid.
SparseMatrix poisson_3d(const std::size_t m)
{
  const std::size_t n = m * m * m;
  auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  std::vector<SparseMatrix::Triplet> t;
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i)
      {
        const std::size_t r = idx(i, j, k);
        t.push_back({r, r, 6.});
        if (i > 0)
          t.push_back({r, idx(i - 1, j, k), -1.});
        if (i + 1 < m)
          t.push_back({r, idx(i + 1, j, k), -1.});
        if (j > 0)
          t.push_back({r, idx(i, j - 1, k), -1.});
        if (j + 1 < m)
          t.push_back({r, idx(i, j + 1, k), -1.});
        if (k > 0)
          t.push_back({r, idx(i, j, k - 1), -1.});
        if (k + 1 < m)
          t.push_back({r, idx(i, j, k + 1), -1.});
      }
  return SparseMatrix::from_triplets(n, n, std::move(t));
}
} // namespace

TEST(SparseMatrixTest, TripletsWithDuplicatesAreSummed)
{
  std::vector<SparseMatrix::Triplet> t = {
    {0, 0, 1.}, {0, 0, 2.}, {1, 0, 0.5}, {0, 1, -1.}};
  const auto m = SparseMatrix::from_triplets(2, 2, t);
  EXPECT_EQ(m.n_nonzeros(), 3u);
  Vector<double> x(2), y;
  x[0] = 1.;
  x[1] = 1.;
  m.vmult(y, x);
  EXPECT_DOUBLE_EQ(y[0], 2.);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
}

TEST(SparseMatrixTest, TransposeRoundTrip)
{
  const auto A = poisson_3d(3);
  const auto At = A.transpose();
  // symmetric matrix: transpose equals original
  Vector<double> x(A.n_rows()), y1, y2;
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(1. + double(i));
  A.vmult(y1, x);
  At.vmult(y2, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(SparseMatrixTest, MultiplyMatchesDense)
{
  // (A*A) x == A (A x)
  const auto A = poisson_1d(10);
  const auto AA = SparseMatrix::multiply(A, A);
  Vector<double> x(10), y1, y2, t;
  for (std::size_t i = 0; i < 10; ++i)
    x[i] = 0.3 * double(i) - 1.;
  A.vmult(t, x);
  A.vmult(y1, t);
  AA.vmult(y2, x);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(SparseMatrixTest, GaussSeidelReducesResidual)
{
  const auto A = poisson_3d(5);
  const std::size_t n = A.n_rows();
  Vector<double> b(n), x(n), r;
  b = 1.;
  for (unsigned int sweep = 0; sweep < 3; ++sweep)
  {
    A.vmult(r, x);
    r.sadd(-1., 1., b);
    const double before = double(r.l2_norm());
    A.gauss_seidel_forward(x, b);
    A.gauss_seidel_backward(x, b);
    A.vmult(r, x);
    r.sadd(-1., 1., b);
    EXPECT_LT(double(r.l2_norm()), before);
  }
}

TEST(AMGTest, DirectSolveOnSmallMatrix)
{
  // below the coarse-size threshold, AMG is a dense LU solve
  const auto A = poisson_1d(50);
  AMG amg;
  amg.setup(A);
  EXPECT_EQ(amg.n_levels(), 1u);
  Vector<double> b(50), x(50), r;
  for (std::size_t i = 0; i < 50; ++i)
    b[i] = std::cos(0.2 * double(i));
  amg.vcycle(x, b);
  A.vmult(r, x);
  r.sadd(-1., 1., b);
  EXPECT_LT(double(r.l2_norm()), 1e-12 * double(b.l2_norm()));
}

TEST(AMGTest, ConvergesFastOn3DPoisson)
{
  const auto A = poisson_3d(12); // 1728 unknowns -> multiple levels
  AMG amg;
  amg.setup(A);
  EXPECT_GE(amg.n_levels(), 2u);
  Vector<double> b(A.n_rows()), x(A.n_rows());
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = std::sin(0.37 * double(i));
  const unsigned int cycles = amg.solve(x, b, 1e-8, 50);
  EXPECT_LE(cycles, 25u) << "AMG cycles: " << cycles;
  Vector<double> r;
  A.vmult(r, x);
  r.sadd(-1., 1., b);
  EXPECT_LT(double(r.l2_norm()), 1e-8 * double(b.l2_norm()));
}

TEST(AMGTest, CoarseningReducesSize)
{
  const auto A = poisson_3d(12);
  AMG amg;
  amg.setup(A);
  for (unsigned int l = 1; l < amg.n_levels(); ++l)
    EXPECT_LT(amg.level_size(l), amg.level_size(l - 1));
}

TEST(AMGTest, ConvergesOnRandomDiagonallyDominantSPD)
{
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(0., 1.);
  const std::size_t n = 800;
  std::vector<SparseMatrix::Triplet> t;
  std::vector<double> row_sum(n, 0.);
  for (std::size_t r = 0; r < n; ++r)
    for (unsigned int k = 0; k < 4; ++k)
    {
      const std::size_t c = (r + 1 + std::size_t(dist(rng) * 20)) % n;
      if (c == r)
        continue;
      const double v = -dist(rng);
      t.push_back({r, c, v});
      t.push_back({c, r, v}); // keep it symmetric
      row_sum[r] += std::abs(v);
      row_sum[c] += std::abs(v);
    }
  for (std::size_t r = 0; r < n; ++r)
    t.push_back({r, r, row_sum[r] + 1.});
  const auto A = SparseMatrix::from_triplets(n, n, std::move(t));

  AMG amg;
  amg.setup(A);
  Vector<double> b(n), x(n), r(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::sin(0.1 * double(i));
  const unsigned int cycles = amg.solve(x, b, 1e-8, 60);
  EXPECT_LE(cycles, 60u);
  A.vmult(r, x);
  r.sadd(-1., 1., b);
  EXPECT_LT(double(r.l2_norm()), 1e-8 * double(b.l2_norm()) * 1.01);
}
