// Flow through a single airway bifurcation (the paper's "generic
// bifurcation" geometry): pressure-driven flow from the parent tube into
// two daughters with RC outlet loads. Reports the flow split between the
// daughters and compares the total flow against the laminar (Poiseuille)
// network prediction - the 3D/0D consistency check behind the lung
// application's boundary conditions.
//
// Run: ./examples/bifurcation_flow [n_steps]

#include <cstdio>

#include "instrumentation/profiler.h"
#include "lung/lung_application.h"

using namespace dgflow;

int main(int argc, char **argv)
{
  prof::EnvSession profile_session;
  const unsigned int n_steps = argc > 1 ? std::atoi(argv[1]) : 600;

  LungApplicationParameters prm;
  prm.generations = 1;
  prm.tree.branch_angle_major = 30. * M_PI / 180.;
  prm.tree.branch_angle_minor = 30. * M_PI / 180.;
  prm.tree.jitter = 0.;
  LungApplication app(prm);

  std::printf("bifurcation flow: %u cells, %zu velocity dofs, 2 outlets\n",
              app.mesh().n_active_cells(),
              app.solver().matrix_free().n_dofs(0, 3));

  const double mu =
    prm.lung.air_density * prm.lung.kinematic_viscosity;
  const double r_resolved = app.tree().subtree_resistance(mu, 0, 1);
  std::printf("analytic resolved-tree resistance: %.4f kPa s/l\n\n",
              r_resolved * liter / 1e3);

  std::printf("%8s %10s %12s %12s %12s %9s\n", "step", "time [s]",
              "Q_in [l/s]", "Q_out1/Q_in", "Q_out2/Q_in", "balance");
  for (unsigned int step = 1; step <= n_steps; ++step)
  {
    app.advance();
    if (step % std::max(1u, n_steps / 12) == 0)
    {
      const double q_in = -app.solver().boundary_flux(LungMesh::inlet_id);
      const double q1 =
        app.solver().boundary_flux(app.lung_mesh().outlet_ids[0]);
      const double q2 =
        app.solver().boundary_flux(app.lung_mesh().outlet_ids[1]);
      std::printf("%8u %10.5f %12.4f %12.3f %12.3f %9.4f\n", step,
                  app.solver().time(), q_in / liter,
                  q_in > 1e-9 ? q1 / q_in : 0.,
                  q_in > 1e-9 ? q2 / q_in : 0.,
                  q_in > 1e-9 ? (q1 + q2) / q_in : 0.);
    }
  }

  const double q_in = -app.solver().boundary_flux(LungMesh::inlet_id);
  const double predicted = app.ventilation().predicted_steady_flow(
    app.ventilation().ventilator_pressure(app.solver().time()), r_resolved);
  std::printf("\nfinal inflow %.4f l/s; quasi-static laminar network "
              "prediction %.4f l/s\n",
              q_in / liter, predicted / liter);
  std::printf("(symmetric daughters: expect a ~50/50 split and mass balance "
              "~1 up to the compartment filling rate)\n");
  return 0;
}
