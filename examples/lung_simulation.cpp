// Lung airflow under mechanical ventilation (the paper's application,
// Section 5.3): generates a morphometric airway tree of the requested number
// of generations, meshes it with hex-only swept tubes, and simulates
// pressure-controlled ventilation with tubus pressure drop at the tracheal
// inlet and RC compartment models at every terminal airway.
//
// Run: ./examples/lung_simulation [generations] [n_steps] [output.vtk]
// (a full breathing cycle needs ~1e5-1e6 steps; the default runs the early
// inhalation transient and reports the flow and volume waveforms)

#include <cstdio>

#include "incns/vtk_writer.h"
#include "instrumentation/profiler.h"
#include "lung/lung_application.h"

using namespace dgflow;

int main(int argc, char **argv)
{
  prof::EnvSession profile_session;
  LungApplicationParameters prm;
  prm.generations = argc > 1 ? std::atoi(argv[1]) : 3;
  const unsigned int n_steps = argc > 2 ? std::atoi(argv[2]) : 400;

  LungApplication app(prm);

  std::printf("lung simulation, g = %u generations\n", prm.generations);
  std::printf("  airways             %zu (%u terminal)\n",
              app.tree().airways().size(), app.tree().n_terminal());
  std::printf("  mesh cells          %u\n", app.mesh().n_active_cells());
  std::printf("  velocity dofs       %zu\n",
              app.solver().matrix_free().n_dofs(0, 3));
  std::printf("  pressure dofs       %zu\n",
              app.solver().matrix_free().n_dofs(1, 1));
  const double mu =
    prm.lung.air_density * prm.lung.kinematic_viscosity;
  std::printf("  resolved airway R   %.4f kPa s/l (analytic, generations "
              "0..%u)\n",
              app.tree().subtree_resistance(mu, 0, prm.generations) * liter /
                1e3,
              prm.generations);
  std::printf("  ventilator          PEEP + dp, dp0 = %.1f cmH2O, T = %.1f s, "
              "target VT = %.0f ml\n\n",
              prm.ventilator.dp / cmH2O, prm.ventilator.period,
              prm.ventilator.target_tidal_volume / liter * 1000);

  std::printf("%8s %10s %10s %12s %12s %10s %8s\n", "step", "time [s]",
              "dt [s]", "Q_in [l/s]", "V_in [ml]", "p iters", "s/step");
  double wall_total = 0;
  for (unsigned int step = 1; step <= n_steps; ++step)
  {
    const auto info = app.advance();
    wall_total += info.wall_time;
    if (step % std::max(1u, n_steps / 15) == 0)
      std::printf("%8u %10.5f %10.2e %12.4f %12.3f %10u %8.3f\n", step,
                  info.time, info.dt,
                  -app.solver().boundary_flux(LungMesh::inlet_id) / liter,
                  app.ventilation().inhaled_volume_current_cycle() / liter *
                    1000,
                  info.pressure.iterations, info.wall_time);
  }

  if (argc > 3)
  {
    using Solver = INSSolver<double>;
    VTKWriter<double> writer(app.solver().matrix_free(), Solver::u_space,
                             Solver::quad_u);
    writer.add_vector("velocity", app.solver().velocity());
    writer.add_scalar("pressure", app.solver().pressure(), Solver::p_space,
                      Solver::quad_u);
    writer.write(argv[3]);
    std::printf("\nwrote %s\n", argv[3]);
  }

  std::printf("\naverage wall time per step: %.4f s\n", wall_total / n_steps);
  std::printf("estimated steps per breathing cycle: %.3g\n",
              app.estimated_steps_per_cycle());
  std::printf("estimated wall time per cycle on this machine: %.1f h\n",
              app.estimated_steps_per_cycle() * wall_total / n_steps / 3600.);
  return 0;
}
