// Unsteady Navier-Stokes accuracy demonstration on the Ethier-Steinman
// (Beltrami) flow: an exact three-dimensional solution of the incompressible
// equations. The run reports the velocity and pressure errors against the
// analytic solution over time and demonstrates the second-order dual
// splitting scheme with the consistent (rotational) pressure boundary
// condition.
//
// Run: ./examples/beltrami_flow [degree] [dt]

#include <cstdio>

#include "incns/analytic_flows.h"
#include "incns/solver.h"
#include "instrumentation/profiler.h"
#include "mesh/generators.h"

using namespace dgflow;

int main(int argc, char **argv)
{
  prof::EnvSession profile_session;
  const unsigned int degree = argc > 1 ? std::atoi(argv[1]) : 4;
  const double dt = argc > 2 ? std::atof(argv[2]) : 2e-3;
  const double end_time = 0.1;

  EthierSteinman es;

  Mesh mesh(unit_cube());
  mesh.refine_uniform(1);
  TrilinearGeometry geometry(mesh.coarse());

  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [es](const Point &p, double t) { return es.pressure(p, t); };
      b.backflow_stabilization = false; // analytic in/outflow
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [es](const Point &p, double t) { return es.velocity(p, t); };
    }
    bc[id] = b;
  }

  INSSolver<double>::Parameters prm;
  prm.degree = degree;
  prm.viscosity = es.nu;
  prm.fixed_dt = dt;
  prm.rel_tol_pressure = 1e-9;
  prm.rel_tol_viscous = 1e-9;
  prm.rel_tol_projection = 1e-9;
  prm.velocity_neumann_data = [es](const Point &p, double t) {
    const auto g = es.velocity_gradient(p, t);
    return Tensor1<double>(g[0][0], g[1][0], g[2][0]);
  };

  INSSolver<double> solver;
  solver.setup(mesh, geometry, bc, prm);
  solver.set_initial_condition(
    [&es](const Point &p) { return es.velocity(p, 0.); },
    [&es](const Point &p) { return es.pressure(p, 0.); });

  std::printf("Ethier-Steinman flow: degree %u, dt = %g, nu = %g\n", degree,
              dt, es.nu);
  std::printf("%10s %14s %14s %12s\n", "time", "u error", "p error",
              "div(u)");
  unsigned int step = 0;
  const unsigned int report_every =
    std::max(1u, static_cast<unsigned int>(end_time / dt / 10));
  while (solver.time() < end_time - 1e-12)
  {
    solver.advance();
    if (++step % report_every == 0)
    {
      const double t = solver.time();
      const double eu = l2_error_vector(
        solver.matrix_free(), 0, 0, solver.velocity(),
        [&](const Point &p) { return es.velocity(p, t); });
      const double ep =
        l2_error(solver.matrix_free(), 1, 1, solver.pressure(),
                 [&](const Point &p) { return es.pressure(p, t); });
      std::printf("%10.4f %14.4e %14.4e %12.3e\n", t, eu, ep,
                  solver.divergence_l2());
    }
  }
  return 0;
}
