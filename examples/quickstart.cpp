// Quickstart: solve a Poisson problem with the matrix-free high-order DG
// discretization and the hybrid multigrid preconditioner - the minimal tour
// of the dgflow public API:
//
//   mesh       -> forest-of-octrees over a coarse hex mesh
//   geometry   -> smooth map per coarse cell (here: a deformed cube)
//   MatrixFree -> SIMD cell/face batches + metric terms
//   LaplaceOperator / HybridMultigrid / solve_cg
//
// Build and run:  ./examples/quickstart [refinements] [degree]

#include <cstdio>

#include "common/timer.h"
#include "instrumentation/profiler.h"
#include "mesh/generators.h"
#include "multigrid/hybrid_multigrid.h"
#include "solvers/cg.h"

using namespace dgflow;

int main(int argc, char **argv)
{
  // DGFLOW_PROFILE=1 prints the hierarchical profile at exit and
  // DGFLOW_PROFILE_JSON=<path> archives it as JSON
  prof::EnvSession profile_session;
  const unsigned int refinements = argc > 1 ? std::atoi(argv[1]) : 3;
  const unsigned int degree = argc > 2 ? std::atoi(argv[2]) : 3;

  // a cube, uniformly refined, with a smooth deformation
  Mesh mesh(unit_cube());
  mesh.refine_uniform(refinements);
  AnalyticGeometry geometry([](index_t, const Point &p) {
    return Point(p[0] + 0.08 * std::sin(M_PI * p[0]) * p[1],
                 p[1] - 0.05 * p[0] * p[2], p[2] + 0.04 * p[1]);
  });

  // matrix-free data: one DG space of the chosen degree, collocated Gauss
  // quadrature
  MatrixFree<double> matrix_free;
  MatrixFree<double>::AdditionalData data;
  data.degrees = {degree};
  data.n_q_points_1d = {degree + 1};
  matrix_free.reinit(mesh, geometry, data);

  // -laplace(u) = f with Dirichlet boundaries, manufactured solution
  BoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
    bc.set(id, BoundaryType::dirichlet);
  LaplaceOperator<double> laplace;
  laplace.reinit(matrix_free, 0, 0, bc);

  const auto exact = [](const Point &p) {
    return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) *
           std::sin(M_PI * p[2]);
  };
  Vector<double> rhs, solution(laplace.n_dofs());
  laplace.assemble_rhs(
    rhs, [&](const Point &p) { return 3 * M_PI * M_PI * exact(p); }, exact);

  // hybrid multigrid preconditioner: DG p-coarsening -> continuous Q1 ->
  // global h-coarsening -> algebraic coarse solve, V-cycle in single
  // precision
  HybridMultigrid<float> multigrid;
  Timer setup_timer;
  multigrid.setup(mesh, geometry, degree, bc);
  const double t_setup = setup_timer.seconds();

  SolverControl control;
  control.rel_tol = 1e-10;
  control.max_iterations = 100;
  Timer solve_timer;
  const SolveStats result = solve_cg(laplace, solution, rhs, multigrid,
                                     control);
  const double t_solve = solve_timer.seconds();

  const double error = l2_error(matrix_free, 0, 0, solution, exact);

  std::printf("dgflow quickstart\n");
  std::printf("  cells               %u\n", mesh.n_active_cells());
  std::printf("  degree              %u\n", degree);
  std::printf("  dofs                %zu\n", laplace.n_dofs());
  std::printf("  multigrid levels    %u\n", multigrid.n_levels());
  std::printf("  setup time          %.3f s\n", t_setup);
  std::printf("  CG iterations       %u (tol 1e-10)\n", result.iterations);
  std::printf("  solve time          %.3f s  (%.3g MDoF/s per iteration)\n",
              t_solve,
              laplace.n_dofs() * result.iterations / t_solve / 1e6);
  std::printf("  L2 error            %.3e\n", error);
  return 0;
}
