// Pressure-driven channel flow (plane Poiseuille): the incompressible
// Navier-Stokes solver with pressure in/outflow boundaries develops the
// analytic parabolic profile from rest; the volume flux converges to the
// closed-form value G/(12 nu) - the same laminar-resistance physics that
// calibrates the lung outlet models.
//
// Run: ./examples/channel_flow [end_time]

#include <cstdio>

#include "incns/analytic_flows.h"
#include "incns/solver.h"
#include "instrumentation/profiler.h"
#include "mesh/generators.h"

using namespace dgflow;

int main(int argc, char **argv)
{
  prof::EnvSession profile_session;
  const double end_time = argc > 1 ? std::atof(argv[1]) : 1.5;

  PoiseuilleChannel channel;
  channel.G = 1.;
  channel.nu = 1.;

  Mesh mesh(subdivided_box(Point(0, 0, 0), Point(1, 1, 1), {{1, 1, 1}}));
  mesh.refine_uniform(2);
  TrilinearGeometry geometry(mesh.coarse());

  FlowBoundaryMap bc;
  for (unsigned int id = 0; id < 6; ++id)
  {
    FlowBoundary b;
    if (id == 0 || id == 1)
    {
      b.kind = FlowBoundary::Kind::pressure;
      b.pressure = [&channel, id](const Point &, double) {
        return id == 0 ? channel.G : 0.;
      };
    }
    else if (id == 2 || id == 3)
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet; // no-slip walls
      b.velocity = [](const Point &, double) { return Tensor1<double>(); };
    }
    else
    {
      b.kind = FlowBoundary::Kind::velocity_dirichlet;
      b.velocity = [&channel](const Point &p, double) {
        return channel.velocity(p); // z-faces carry the analytic profile
      };
    }
    bc[id] = b;
  }

  INSSolver<double>::Parameters prm;
  prm.degree = 3;
  prm.viscosity = channel.nu;
  prm.cfl = 0.3;
  prm.max_dt = 0.01;

  INSSolver<double> solver;
  solver.setup(mesh, geometry, bc, prm);
  solver.set_initial_condition([](const Point &) { return Tensor1<double>(); });

  std::printf("channel flow: %u cells, %zu velocity dofs, analytic flux %.6f\n",
              mesh.n_active_cells(), solver.matrix_free().n_dofs(0, 3),
              channel.flux());
  std::printf("%10s %12s %12s %10s\n", "time", "flux out", "flux error",
              "p iters");
  double next_report = 0.;
  while (solver.time() < end_time)
  {
    const auto info = solver.advance();
    if (info.time >= next_report)
    {
      const double flux = solver.boundary_flux(1);
      std::printf("%10.3f %12.6f %11.2f%% %10u\n", info.time, flux,
                  100. * (flux - channel.flux()) / channel.flux(),
                  info.pressure.iterations);
      next_report += end_time / 10.;
    }
  }
  const double err = l2_error_vector(
    solver.matrix_free(), 0, 0, solver.velocity(),
    [&](const Point &p) { return channel.velocity(p); });
  std::printf("final velocity L2 error vs analytic: %.3e\n", err);
  return 0;
}
